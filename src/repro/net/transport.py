"""Pluggable transports between crawl clients and market servers.

A *transport* is anything the client can push a
:class:`~repro.net.http.Request` through to get a
:class:`~repro.net.http.Response` back.  Three implementations cover
the repo's needs:

* :class:`InProcessTransport` — a thin callable wrapper over a server's
  ``handle`` method.  The fast path tests run on; zero copies, zero
  serialization.
* :class:`SocketTransport` — one persistent blocking TCP connection to
  a :class:`~repro.serving.ServingTier` listener.  This is what a
  thread-engine lane uses against the real serving tier.
* :class:`AsyncSocketTransport` — a connection *pool* over the same
  frame protocol for :class:`~repro.net.aclient.AsyncHttpClient`.  Each
  in-flight request occupies its own connection (the frame protocol is
  strict request/response per connection), so a pipelining client at
  depth N holds up to N sockets open.

The frame protocol is deliberately boring: a 4-byte big-endian length
prefix followed by a :mod:`repro.net.wire` (RW01) payload.  Requests
and responses are encoded as canonical wire maps, which is what makes
the digest oracle hold across transports — the wire codec round-trips
every value shape market metadata uses (ints stay ints, bytes stay
bytes, ``None`` stays ``None``), and ``Response.json_ok(None)`` — a
legitimate payload (a removed index slot) — survives because the
response map carries ``json`` and ``body`` as separate fields rather
than inferring absence.

Timeouts and connection drops surface as ``Response.timeout()`` (the
599 convention), so the client's existing retry/backoff machinery —
not the transport — decides what a flaky link costs.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, List, Optional, Tuple

from repro.net import wire
from repro.net.http import Request, Response

__all__ = [
    "Transport",
    "TransportError",
    "InProcessTransport",
    "SocketTransport",
    "AsyncSocketTransport",
    "AsyncInProcessTransport",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "pack_frame",
    "read_frame",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "DEFAULT_SOCKET_TIMEOUT",
]

#: A transport is a ``Request -> Response`` callable (duck-typed; the
#: in-process path binds ``server.handle`` directly).
Transport = Callable[[Request], Response]

#: Length-prefix width of one frame.
FRAME_HEADER_BYTES = 4

#: Hard ceiling on one frame's payload (an APK blob plus headroom); a
#: larger prefix means a corrupt or misaligned stream, not real data.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Wall-clock seconds a synchronous transport waits on one response.
DEFAULT_SOCKET_TIMEOUT = 30.0


class TransportError(ConnectionError):
    """The byte stream broke the frame protocol (not a server answer)."""


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------


def encode_request(request: Request) -> bytes:
    """One request as a canonical wire map."""
    return wire.encode({
        "path": request.path,
        "params": dict(request.params),
        "headers": dict(request.headers),
    })


def decode_request(payload: bytes) -> Request:
    doc = wire.decode(payload)
    if not isinstance(doc, dict) or "path" not in doc:
        raise TransportError("request frame is not a request map")
    return Request(
        path=doc["path"],
        params=doc.get("params") or {},
        headers=doc.get("headers") or {},
    )


def encode_response(response: Response) -> bytes:
    """One response as a canonical wire map.

    ``json`` and ``body`` are both carried explicitly: a 200 whose
    payload is ``None`` (a removed index slot) must decode back to
    exactly that, not to a bodyless 200.
    """
    return wire.encode({
        "status": response.status,
        "json": response.json,
        "body": response.body,
        "retry_after": response.retry_after,
        "malformed": response.malformed,
    })


def decode_response(payload: bytes) -> Response:
    doc = wire.decode(payload)
    if not isinstance(doc, dict) or "status" not in doc:
        raise TransportError("response frame is not a response map")
    return Response(
        status=doc["status"],
        json=doc.get("json"),
        body=doc.get("body"),
        retry_after=doc.get("retry_after"),
        malformed=bool(doc.get("malformed", False)),
    )


def pack_frame(payload: bytes) -> bytes:
    """Length-prefix one wire payload for the stream."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {len(payload)} bytes")
    return len(payload).to_bytes(FRAME_HEADER_BYTES, "big") + payload


def frame_length(header: bytes) -> int:
    """Validate and decode one length prefix."""
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {length} bytes")
    return length


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one length-prefixed payload from an asyncio stream."""
    header = await reader.readexactly(FRAME_HEADER_BYTES)
    return await reader.readexactly(frame_length(header))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class InProcessTransport:
    """The fast path: calls the server's ``handle`` directly.

    Exists mostly to give the in-process path a name next to the socket
    transports; ``HttpClient`` accepts the bare ``server.handle``
    callable just as happily.
    """

    __slots__ = ("_handler",)

    def __init__(self, handler: Transport):
        self._handler = handler

    def __call__(self, request: Request) -> Response:
        return self._handler(request)

    def close(self) -> None:  # symmetry with SocketTransport
        pass


class SocketTransport:
    """One persistent blocking connection to a serving-tier listener.

    Built for the thread engine's lane discipline: one lane, one
    connection, strictly sequential request/response frames.  A read
    timeout or connection drop answers ``Response.timeout()`` (and
    drops the connection, since a half-read stream is unusable), which
    the client's 599 handling retries on a fresh connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_SOCKET_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def __call__(self, request: Request) -> Response:
        try:
            sock = self._connect()
            sock.sendall(pack_frame(encode_request(request)))
            header = _recv_exactly(sock, FRAME_HEADER_BYTES)
            payload = _recv_exactly(sock, frame_length(header))
        except (socket.timeout, TimeoutError):
            self.close()
            return Response.timeout()
        except (TransportError, OSError):
            # Drops and resets are transient transport weather; surface
            # them through the same 599 path timeouts use so the retry
            # budget — not the transport — decides when to give up.
            self.close()
            return Response.timeout()
        return decode_response(payload)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass


class AsyncInProcessTransport:
    """Async facade over an in-process handler (tests, engine parity).

    The ``sleep(0)`` keeps the event loop fair when many lane
    coroutines share it — without yielding, one lane's burst would run
    to completion before any other lane gets scheduled.
    """

    __slots__ = ("_handler",)

    def __init__(self, handler: Transport):
        self._handler = handler

    async def send(self, request: Request) -> Response:
        await asyncio.sleep(0)
        return self._handler(request)

    async def aclose(self) -> None:
        pass


class AsyncSocketTransport:
    """A pooled asyncio connection set over the frame protocol.

    Each :meth:`send` checks a free connection out of the pool (opening
    a new one when none is idle), runs one request/response exchange on
    it, and returns it.  The pool therefore grows to the client's
    actual concurrency — a pipelining lane at depth 8 holds 8 sockets,
    a load-generator user holds 1 — and never multiplexes two in-flight
    requests onto one stream.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_SOCKET_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._opened = 0

    @property
    def connections_opened(self) -> int:
        """Sockets this transport has opened over its lifetime."""
        return self._opened

    async def _checkout(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._opened += 1
        return reader, writer

    async def send(self, request: Request) -> Response:
        try:
            reader, writer = await self._checkout()
        except OSError:
            return Response.timeout()
        try:
            writer.write(pack_frame(encode_request(request)))
            await writer.drain()
            payload = await asyncio.wait_for(read_frame(reader), self.timeout)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                TransportError, OSError):
            writer.close()
            return Response.timeout()
        except asyncio.CancelledError:
            # A cancelled exchange leaves the stream mid-frame; the
            # connection cannot be reused.
            writer.close()
            raise
        self._idle.append((reader, writer))
        return decode_response(payload)

    async def aclose(self) -> None:
        idle, self._idle = self._idle, []
        for _reader, writer in idle:
            writer.close()
        for _reader, writer in idle:
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass


def response_to_wire(response: Response) -> bytes:
    """One response as a ready-to-send frame (serving-tier helper)."""
    return pack_frame(encode_response(response))


def request_to_wire(request: Request) -> bytes:
    """One request as a ready-to-send frame (client/test helper)."""
    return pack_frame(encode_request(request))
