"""Deterministic binary wire format for hostile-market responses.

Some markets never spoke JSON to crawlers: Tencent Myapp's app API
answers protobuf, and several vendor stores use length-prefixed binary
envelopes.  This module is the repo's stand-in — a self-describing,
protobuf-*like* tag/length/value encoding with two properties the
determinism contract needs:

* **Canonical**: the same Python value always encodes to the same
  bytes (dict insertion order is preserved, floats are fixed-width
  IEEE-754, ints are zigzag varints), so snapshots digest identically
  whether a market answered JSON or wire.
* **Lossless over listing metadata**: every type
  :meth:`~repro.markets.store.Listing.metadata` emits — str (any
  Unicode), int (any magnitude), float, bool, None, lists, dicts —
  round-trips exactly.  The wire property test drives this with
  non-ASCII package/title text.

Layout: a 4-byte magic (``RW01``) followed by one value.  Each value is
a 1-byte tag; strings/bytes add a varint byte length, containers add a
varint element count, ints are zigzag varints, floats are 8 raw
big-endian IEEE-754 bytes.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

__all__ = ["encode", "decode", "is_wire", "WireError", "WIRE_MAGIC"]

#: Leading magic marking a wire-encoded payload (also the format version).
WIRE_MAGIC = b"RW01"

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_LIST = 7
_TAG_DICT = 8


class WireError(ValueError):
    """The payload is not a valid wire message."""


def _write_varint(out: List[bytes], value: int) -> None:
    if value < 0:
        raise WireError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _write_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes((_TAG_NONE,)))
    elif value is True:
        out.append(bytes((_TAG_TRUE,)))
    elif value is False:
        out.append(bytes((_TAG_FALSE,)))
    elif isinstance(value, int):
        out.append(bytes((_TAG_INT,)))
        # Zigzag maps signed ints onto the varint's non-negative domain
        # (arbitrary precision: no 64-bit assumption).
        _write_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))
    elif isinstance(value, float):
        out.append(bytes((_TAG_FLOAT,)))
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes((_TAG_STR,)))
        _write_varint(out, len(raw))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes((_TAG_BYTES,)))
        _write_varint(out, len(value))
        out.append(bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(bytes((_TAG_LIST,)))
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.append(bytes((_TAG_DICT,)))
        _write_varint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            _write_value(out, key)
            _write_value(out, item)
    else:
        raise WireError(f"cannot encode {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Encode one JSON-safe value to its canonical wire bytes."""
    out: List[bytes] = [WIRE_MAGIC]
    _write_value(out, value)
    return b"".join(out)


def is_wire(data: bytes) -> bool:
    """Whether a payload carries the wire magic."""
    return isinstance(data, (bytes, bytearray)) and bytes(data[:4]) == WIRE_MAGIC


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 700:  # generous: arbitrary-precision ints, bounded scan
            raise WireError("varint too long")


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[pos:pos + 8])[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise WireError("truncated string")
        try:
            return data[pos:pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid utf-8 payload: {exc}") from exc
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise WireError("truncated bytes")
        return bytes(data[pos:pos + length]), pos + length
    if tag == _TAG_LIST:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        obj = {}
        for _ in range(count):
            key, pos = _read_value(data, pos)
            if not isinstance(key, str):
                raise WireError("dict key is not a string")
            obj[key], pos = _read_value(data, pos)
        return obj, pos
    raise WireError(f"unknown tag {tag}")


def decode(data: bytes) -> Any:
    """Decode wire bytes back to the value :func:`encode` was given."""
    if not is_wire(data):
        raise WireError("missing wire magic")
    value, pos = _read_value(bytes(data), len(WIRE_MAGIC))
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after value")
    return value
