"""Unified observability: span tracing, metrics, stage profiling.

``repro.obs`` is the layer every other subsystem reports through:

* the HTTP client emits per-request spans and service-time histograms,
* the circuit breaker emits state-transition events,
* the crawl coordinator wraps discovery / search rounds / APK batches
  in spans tied to the per-campaign trace,
* the study pipeline and experiment renders run under profiler stages.

:class:`Observability` bundles the three recorders.  Every component
is optional and defaults to *off*: :data:`NULL_OBS` (all recorders
``None``) is what the pipeline threads through when nothing was
requested, and its ``span``/``stage`` return a shared no-op context so
the disabled path costs a ``None`` check — proved by the observability
benchmark, which bounds the disabled-path overhead below 3% of crawl
wall time.

The hot path goes one step further: :meth:`Observability.lane` returns
``None`` when neither tracing nor metrics are on, so the HTTP client's
per-request fast path is a single ``is None`` branch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import (
    DEFAULT_SIM_DAY_BUCKETS,
    DEFAULT_WALL_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.monitor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_STALL_BUDGET,
    CampaignMonitor,
)
from repro.obs.profiler import StageProfiler, StageRecord
from repro.obs.trace import NULL_SPAN, NullSpan, Span, SpanTracer

__all__ = [
    "Observability",
    "LaneObs",
    "NULL_OBS",
    "SpanTracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StageProfiler",
    "StageRecord",
    "CampaignMonitor",
]


class LaneObs:
    """One market lane's binding of the tracer and its histograms.

    Built once per lane at engine construction, so the per-request path
    touches pre-resolved attributes only.  ``tracer`` may be ``None``
    (metrics without tracing); the request histograms may be ``None``
    (tracing without metrics).
    """

    __slots__ = ("tracer", "market", "clock", "hist_request", "hist_backoff")

    def __init__(
        self,
        market: str,
        clock,
        tracer: Optional[SpanTracer],
        metrics: Optional[MetricsRegistry],
    ):
        self.market = market
        self.clock = clock
        self.tracer = tracer
        if metrics is not None:
            self.hist_request = metrics.histogram(
                "http_request_wall_seconds", DEFAULT_WALL_BUCKETS, market=market
            )
            self.hist_backoff = metrics.histogram(
                "http_backoff_sim_days", DEFAULT_SIM_DAY_BUCKETS, market=market
            )
        else:
            self.hist_request = None
            self.hist_backoff = None


class Observability:
    """The bundle of recorders one run threads through its pipeline."""

    def __init__(
        self,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[StageProfiler] = None,
        monitor: Optional[CampaignMonitor] = None,
    ):
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.monitor = monitor

    @classmethod
    def from_flags(
        cls,
        trace: bool = False,
        metrics: bool = False,
        profile: bool = False,
        monitor: bool = False,
        monitor_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        stall_budget: float = DEFAULT_STALL_BUDGET,
    ) -> "Observability":
        """Recorders for exactly what was asked; NULL_OBS when nothing.

        The monitor snapshots the metrics registry, so ``monitor=True``
        materializes one even when no ``--metrics-out`` export was
        requested (the heartbeat samples still reach ``run-report`` and
        the warehouse through the telemetry's registry).
        """
        if not (trace or metrics or profile or monitor):
            return NULL_OBS
        tracer = SpanTracer() if trace else None
        registry = MetricsRegistry() if (metrics or monitor) else None
        return cls(
            tracer=tracer,
            metrics=registry,
            profiler=StageProfiler() if profile else None,
            monitor=(
                CampaignMonitor(
                    registry,
                    tracer=tracer,
                    interval=monitor_interval,
                    stall_budget=stall_budget,
                )
                if monitor
                else None
            ),
        )

    @property
    def enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.profiler is not None
        )

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        market: Optional[str] = None,
        clock=None,
        root: bool = False,
        **attrs,
    ):
        """A span context manager (no-op when tracing is off)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, market=market, clock=clock, root=root, **attrs)

    def event(
        self,
        name: str,
        market: Optional[str] = None,
        sim_time: Optional[float] = None,
        **attrs,
    ) -> None:
        if self.tracer is not None:
            self.tracer.event(name, market=market, sim_time=sim_time, **attrs)

    def stage(self, name: str):
        """A pipeline-stage context: profiler stage + span, as enabled."""
        if self.profiler is None:
            return self.span(f"stage.{name}")
        if self.tracer is None:
            return self.profiler.stage(name)
        return _StageSpan(self, name)

    def lane(self, market: str, clock) -> Optional[LaneObs]:
        """The hot-path binding for one market lane (None = all off)."""
        if self.tracer is None and self.metrics is None:
            return None
        return LaneObs(market, clock, self.tracer, self.metrics)

    # -- export ------------------------------------------------------------

    def export_trace(self, path) -> int:
        if self.tracer is None:
            raise ValueError("tracing is not enabled on this run")
        return self.tracer.export_jsonl(path)

    def export_metrics(self, path) -> int:
        if self.metrics is None:
            raise ValueError("metrics are not enabled on this run")
        return self.metrics.export_jsonl(path)

    def export_profile(self, path) -> int:
        if self.profiler is None:
            raise ValueError("profiling is not enabled on this run")
        return self.profiler.export_jsonl(path)

    def profile_report(self, telemetry=None) -> str:
        if self.profiler is None:
            return "stage profile: profiling was not enabled"
        return self.profiler.report(telemetry)


class _StageSpan:
    """Profiler stage and tracer span entered/exited together."""

    __slots__ = ("_obs", "_name", "_stage_cm", "_span")

    def __init__(self, obs: Observability, name: str):
        self._obs = obs
        self._name = name
        self._stage_cm = None
        self._span = None

    def __enter__(self):
        self._stage_cm = self._obs.profiler.stage(self._name)
        self._stage_cm.__enter__()
        self._span = self._obs.tracer.span(f"stage.{self._name}")
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb):
        try:
            self._span.__exit__(exc_type, exc, tb)
        finally:
            self._stage_cm.__exit__(exc_type, exc, tb)
        return False


#: The default: nothing records, spans and stages are shared no-ops.
NULL_OBS = Observability()


def breaker_listener(obs: Observability, market: str, clock):
    """A breaker ``on_transition`` callback bound to one market lane.

    Returns ``None`` when tracing is off so the breaker skips the call
    entirely (the same ``is None`` discipline as the client hot path).
    """
    tracer = obs.tracer
    if tracer is None:
        return None

    def listen(old_state: str, new_state: str, trips: int, quarantined: bool) -> None:
        tracer.event(
            "breaker.transition",
            market=market,
            sim_time=clock.now,
            from_state=old_state,
            to_state=new_state,
            trips=trips,
            quarantined=quarantined,
        )

    return listen


def counts_from_spans(records: List[dict]) -> dict:
    """Span-name -> (count, total wall, max wall) summary of a trace."""
    summary: dict = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        name = record["name"]
        count, total, peak = summary.get(name, (0, 0.0, 0.0))
        wall = float(record["wall_seconds"])
        summary[name] = (count + 1, total + wall, max(peak, wall))
    return summary
