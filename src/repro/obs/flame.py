"""Folded-stacks export of a span tree for flamegraph tooling.

``flamegraph.pl`` / speedscope / inferno all eat the *folded* format:
one ``frame;frame;frame weight`` line per unique stack, weights summed.
This module renders a trace artifact's span tree into that shape so the
critical path of a campaign — which phase, which market lane, which
request tier the wall time actually went to — drops straight into the
standard tooling.

Weights are **self** wall time in integer microseconds: each span's
wall minus its children's (clamped at zero — lane spans overlap their
parent concurrently, so a parent's children can sum past its own wall
time; inclusive-weight folding would double-count, self-time folding
degrades gracefully to zero).  Identical stacks fold by summing, and
lines come out lexicographically sorted, so the export is byte-stable
for a given trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["folded_stacks", "export_folded"]


def _frame(record: dict) -> str:
    name = str(record.get("name", "?"))
    market = record.get("market")
    frame = f"{name}[{market}]" if market else name
    # The folded format reserves both separators.
    return frame.replace(";", ",").replace(" ", "_")


def folded_stacks(records: Iterable[dict]) -> List[Tuple[str, int]]:
    """Fold a trace's spans into ``(stack, self_weight_us)`` lines.

    ``records`` is the trace artifact (span and event dicts mixed, as
    ``SpanTracer.records()`` / ``validate_trace_file`` return); events
    are ignored.  Orphan parents (spans cut off by a crash) root their
    children at the top level rather than dropping them.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    by_id: Dict[int, dict] = {}
    child_wall: Dict[Optional[int], float] = {}
    for record in spans:
        by_id[int(record["span_id"])] = record
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and int(parent) in by_id:
            key = int(parent)
            child_wall[key] = child_wall.get(key, 0.0) + float(record["wall_seconds"])

    def stack_of(record: dict) -> str:
        frames = [_frame(record)]
        seen = {int(record["span_id"])}
        parent = record.get("parent_id")
        while parent is not None:
            parent = int(parent)
            if parent in seen:  # defensive: never loop on a cyclic trace
                break
            node = by_id.get(parent)
            if node is None:
                break
            seen.add(parent)
            frames.append(_frame(node))
            parent = node.get("parent_id")
        return ";".join(reversed(frames))

    folded: Dict[str, int] = {}
    for record in spans:
        span_id = int(record["span_id"])
        self_wall = float(record["wall_seconds"]) - child_wall.get(span_id, 0.0)
        weight = max(0, int(round(self_wall * 1_000_000)))
        stack = stack_of(record)
        folded[stack] = folded.get(stack, 0) + weight
    return sorted(folded.items())


def export_folded(records: Iterable[dict], path: Union[str, Path]) -> int:
    """Write the folded-stacks file; returns the line count."""
    lines = folded_stacks(records)
    with Path(path).open("w", encoding="utf-8") as handle:
        for stack, weight in lines:
            handle.write(f"{stack} {weight}\n")
    return len(lines)
