"""Metrics registry: counters, gauges, and histograms.

The paper's fleet was run off dashboards; this module is the storage
those dashboards would read.  A :class:`MetricsRegistry` holds named
series keyed by ``(name, labels)`` — :class:`Counter` (monotonic
floats), :class:`Gauge` (last-write-wins values that can also keep
``(sim_time, value)`` samples, which is how queue depth is tracked over
simulated time), and :class:`Histogram` (fixed upper-bound buckets with
sum and count, Prometheus-style cumulative on export).

Two exporters cover the two consumers: ``render_prometheus()`` produces
the text exposition format a scrape endpoint would serve, and
``export_jsonl()`` writes one self-describing JSON object per series —
the machine-readable campaign artifact ``run-report`` and the bench
trajectory read back.  ``load_dicts()`` is the inverse of the JSONL
export, so an artifact can be re-hydrated into a registry and viewed
through the exact same code (:class:`~repro.crawler.telemetry.CrawlTelemetry`
is itself a view over a registry) that rendered the live run.

Ownership rule: series objects are plain attributes with no per-update
locking.  The registry's creation path is locked (lanes may race to
materialize series), but each series is expected to have a single
writer — the same lane-ownership discipline the crawl telemetry and
lane clocks already follow.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_WALL_BUCKETS",
    "DEFAULT_SIM_DAY_BUCKETS",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Wall-clock service-time buckets (seconds): micro-benchmark floor to
#: multi-second stall ceiling.
DEFAULT_WALL_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)

#: Simulated-day buckets for back-off/pacing durations: minutes up to
#: the multi-day quota hints Google Play answers with.
DEFAULT_SIM_DAY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 30.0
)


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing series (floats; ints fit exactly)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A last-write-wins value, optionally sampled over simulated time."""

    __slots__ = ("name", "labels", "value", "samples")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float, at: Optional[float] = None) -> None:
        """Set the gauge; ``at`` (a sim timestamp) also keeps a sample."""
        self.value = float(value)
        if at is not None:
            self.samples.append((float(at), float(value)))

    def to_dict(self) -> dict:
        doc = {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.samples:
            doc["samples"] = [[t, v] for t, v in self.samples]
        return doc


class Histogram:
    """Fixed-bucket histogram (bucket counts are per-bucket, not
    cumulative, in memory; the exporters cumulate where the format
    demands it)."""

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems, buckets: Sequence[float]):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.total,
            "count": self.count,
            "buckets": [[b, c] for b, c in zip(self.buckets, self.counts)],
            "overflow": self.counts[-1],
        }


Series = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metric series of one run, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelItems], Series] = {}

    def _get_or_create(self, cls, name: str, labels: Mapping[str, object], *args):
        key = (name, _label_items(labels))
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = cls(name, key[1], *args)
                    self._series[key] = series
        if not isinstance(series, cls):
            raise TypeError(
                f"metric {name} already registered as {series.kind}, "
                f"not {cls.kind}"
            )
        return series

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_WALL_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> List[Series]:
        """All series in a stable (name, labels) order."""
        return [self._series[key] for key in sorted(self._series)]

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label takes across a metric's series."""
        values = {
            dict(series.labels).get(label)
            for (metric, _), series in self._series.items()
            if metric == name
        }
        return sorted(v for v in values if v is not None)

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        return [series.to_dict() for series in self.series()]

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one JSON object per series; returns the line count."""
        docs = self.to_dicts()
        with Path(path).open("w", encoding="utf-8") as handle:
            for doc in docs:
                handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        return len(docs)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format for every series."""
        lines: List[str] = []
        typed: set = set()
        for series in self.series():
            if series.name not in typed:
                typed.add(series.name)
                lines.append(f"# TYPE {series.name} {series.kind}")
            labels = _format_labels(dict(series.labels))
            if isinstance(series, Histogram):
                cumulative = 0
                for bound, bucket_count in zip(series.buckets, series.counts):
                    cumulative += bucket_count
                    le = _format_labels({**dict(series.labels), "le": _fmt(bound)})
                    lines.append(f"{series.name}_bucket{le} {cumulative}")
                le = _format_labels({**dict(series.labels), "le": "+Inf"})
                lines.append(f"{series.name}_bucket{le} {series.count}")
                lines.append(f"{series.name}_sum{labels} {_fmt(series.total)}")
                lines.append(f"{series.name}_count{labels} {series.count}")
            else:
                lines.append(f"{series.name}{labels} {_fmt(series.value)}")
        if not lines:  # an empty registry exposes nothing, not one blank line
            return ""
        return "\n".join(lines) + "\n"

    # -- import (artifact re-hydration) ------------------------------------

    def load_dicts(self, docs: Iterable[Mapping]) -> int:
        """Re-hydrate exported series into this registry.

        The inverse of :meth:`to_dicts`: after loading, views built over
        the registry (telemetry tables, reports) see the exported run.
        """
        loaded = 0
        for doc in docs:
            kind, name = doc["kind"], doc["name"]
            labels = {str(k): v for k, v in doc.get("labels", {}).items()}
            if kind == "counter":
                self.counter(name, **labels).value = float(doc["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, **labels)
                gauge.value = float(doc["value"])
                gauge.samples = [
                    (float(t), float(v)) for t, v in doc.get("samples", [])
                ]
            elif kind == "histogram":
                buckets = [float(b) for b, _ in doc["buckets"]]
                histogram = self._get_or_create(Histogram, name, labels, buckets)
                histogram.counts = [int(c) for _, c in doc["buckets"]]
                histogram.counts.append(int(doc.get("overflow", 0)))
                histogram.total = float(doc["value"])
                histogram.count = int(doc["count"])
            else:
                raise ValueError(f"unknown series kind {kind!r}")
            loaded += 1
        return loaded


def _fmt(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else repr(float(value))


def _escape(value: str) -> str:
    # Prometheus text format: backslash first, then quote and newline.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"
