"""Live campaign monitoring: heartbeats and a lane stall watchdog.

Long hostile or out-of-core campaigns used to be post-mortem-only: the
operator got a report after the crawl finished, and a lane quietly
burning its whole budget in ban windows looked exactly like a lane
making progress until then.  :class:`CampaignMonitor` adds the two live
signals the paper's fleet operators actually watched:

* a **heartbeat** — every ``interval`` simulated days of fleet
  progress, the monitor snapshots the campaign's vitals (requests,
  records, dead letters) as ``(sim_time, value)`` gauge samples and
  emits a ``monitor.heartbeat`` trace event, giving the exported
  artifacts a time axis instead of only end totals;
* a **stall watchdog** — a lane whose clock keeps advancing (bans,
  back-off, tarpits) without any frontier progress (new records) for
  ``stall_budget`` simulated days gets a ``lane.stalled`` trace event
  and a ``crawl_lane_stalled_total{campaign,market}`` increment.  The
  watchdog re-arms on progress, so a lane that stalls, recovers, and
  stalls again is counted twice.

Determinism: the monitor is driven by the *simulated* clocks at the
coordinator's phase boundaries — both the tick points and every time
axis it reads are deterministic functions of the campaign, so a
monitored run emits identical heartbeat/stall series at any worker
count, and the monitor never touches servers, clients, or the
snapshot: the content digest is bit-identical with monitoring on or
off (enforced by the observability benchmark, within a 3% overhead
budget).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "CampaignMonitor",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_STALL_BUDGET",
    "STALL_METRIC",
    "HEARTBEAT_METRIC",
]

#: Simulated days of fleet progress between heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Simulated days a lane may advance without new records before it is
#: declared stalled.
DEFAULT_STALL_BUDGET = 5.0

HEARTBEAT_METRIC = "monitor_heartbeats_total"
STALL_METRIC = "crawl_lane_stalled_total"

#: Campaign vitals sampled on every heartbeat -> gauge name.
_HEARTBEAT_GAUGES = {
    "requests": "monitor_requests_total",
    "records": "monitor_records_total",
    "dead_letters": "monitor_dead_letters_total",
}


class _LaneWatch:
    """One lane's stall-detection state."""

    __slots__ = ("progress", "since", "stalled")

    def __init__(self, progress: int, since: float):
        self.progress = progress
        self.since = since
        self.stalled = False


class CampaignMonitor:
    """Heartbeat + watchdog over one campaign at a time.

    The coordinator calls :meth:`begin` when a campaign opens,
    :meth:`tick` at every phase boundary (post-discovery, per search
    round, post-APK), and :meth:`finish` before the campaign returns.
    All state is campaign-scoped; the recorded series and events go to
    the run's shared registry/tracer.
    """

    def __init__(
        self,
        registry,
        tracer=None,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        stall_budget: float = DEFAULT_STALL_BUDGET,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        if stall_budget <= 0:
            raise ValueError(f"stall budget must be positive, got {stall_budget}")
        self.registry = registry
        self.tracer = tracer
        self.interval = float(interval)
        self.stall_budget = float(stall_budget)
        self.heartbeats = 0
        self.stalls = 0
        self._label = ""
        self._engine = None
        self._telemetry = None
        self._clock = None
        self._next_beat = 0.0
        self._watches: Dict[str, _LaneWatch] = {}

    # -- campaign lifecycle ------------------------------------------------

    def begin(self, label: str, engine, telemetry, clock) -> None:
        """Open a campaign window: baseline every lane, arm the beat."""
        self._label = label
        self._engine = engine
        self._telemetry = telemetry
        self._clock = clock
        self.heartbeats = 0
        self.stalls = 0
        self._next_beat = self._fleet_now() + self.interval
        self._watches = {
            market_id: _LaneWatch(
                self._lane_progress(market_id), engine.lane(market_id).clock.now
            )
            for market_id in engine.market_ids
        }

    def tick(self, phase: str) -> None:
        """One monitoring pass at a deterministic phase boundary."""
        if self._engine is None:
            return
        now = self._fleet_now()
        while now >= self._next_beat:
            self._heartbeat(self._next_beat, phase)
            self._next_beat += self.interval
        self._watchdog(phase)

    def finish(self) -> None:
        """Close the campaign: one final heartbeat at fleet end time."""
        if self._engine is None:
            return
        self._heartbeat(self._fleet_now(), "finish")
        self._watchdog("finish")
        self._engine = None
        self._telemetry = None
        self._clock = None
        self._watches = {}

    # -- internals ---------------------------------------------------------

    def _fleet_now(self) -> float:
        """The fleet's furthest simulated time (shared clock is frozen
        mid-campaign; lane back-off is what moves time forward)."""
        return self._clock.now + self._engine.max_lane_backoff

    def _lane_progress(self, market_id: str) -> int:
        """Frontier progress = records ingested for the market so far."""
        return self._telemetry.market(market_id).records

    def _heartbeat(self, at: float, phase: str) -> None:
        self.heartbeats += 1
        vitals = {
            "requests": self._telemetry.total_requests,
            "records": self._telemetry.total_records,
            "dead_letters": self._telemetry.total_dead_letters,
        }
        for key, gauge_name in _HEARTBEAT_GAUGES.items():
            self.registry.gauge(gauge_name, campaign=self._label).set(
                float(vitals[key]), at=at
            )
        self.registry.counter(HEARTBEAT_METRIC, campaign=self._label).inc()
        if self.tracer is not None:
            self.tracer.event(
                "monitor.heartbeat", sim_time=at, phase=phase, **vitals
            )

    def _watchdog(self, phase: str) -> None:
        for market_id, watch in self._watches.items():
            lane_now = self._engine.lane(market_id).clock.now
            progress = self._lane_progress(market_id)
            if progress != watch.progress:
                watch.progress = progress
                watch.since = lane_now
                watch.stalled = False
                continue
            idle = lane_now - watch.since
            if idle >= self.stall_budget and not watch.stalled:
                watch.stalled = True
                self.stalls += 1
                self.registry.counter(
                    STALL_METRIC, campaign=self._label, market=market_id
                ).inc()
                if self.tracer is not None:
                    self.tracer.event(
                        "lane.stalled",
                        market=market_id,
                        sim_time=lane_now,
                        idle_days=idle,
                        budget=self.stall_budget,
                        phase=phase,
                    )
