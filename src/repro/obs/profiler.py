"""Stage profiling: wall time and peak memory per pipeline stage.

``--profile`` answers the operator question *where does the time (and
memory) go?* for one study run: ecosystem synthesis, each crawl
campaign, every analysis stage (unit building, library/clone/fake
detection, VT scans), and each experiment render.  Stages are coarse
and sequential — this is a pipeline profile, not a sampling profiler —
so the cost of ``tracemalloc`` (paid only when profiling is requested)
is confined to runs that asked for it.

Peak memory accounting nests: a stage that triggers a lazy analysis
artifact (an experiment render forcing ``build_units``) must not lose
its own peak when the inner stage resets the tracemalloc high-water
mark.  The profiler therefore folds each segment's observed peak into
the enclosing stage on entry and exit.

``report()`` renders the stage table plus the critical path: the
slowest stage by wall time, the peak-memory stage, and — when given the
campaign telemetry — the slowest market lane by accumulated simulated
waiting (back-off + pacing), which is what stretches a real fleet's
calendar.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["StageRecord", "StageProfiler"]


@dataclass
class StageRecord:
    """One profiled pipeline stage."""

    name: str
    wall_seconds: float
    peak_bytes: int
    depth: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "peak_bytes": self.peak_bytes,
            "depth": self.depth,
        }


class StageProfiler:
    """Wall-time + tracemalloc-peak profiler for sequential stages.

    Stages are expected to run on one thread (the study pipeline is
    sequential at stage granularity; only work *inside* a crawl stage
    fans out to lane threads).
    """

    enabled = True

    def __init__(self, trace_memory: bool = True):
        self.records: List[StageRecord] = []
        self._trace_memory = trace_memory
        self._stack: List[dict] = []
        self._started_tracing = False

    def _current_peak(self) -> int:
        return tracemalloc.get_traced_memory()[1]

    def _reset_peak(self) -> None:
        tracemalloc.reset_peak()

    @contextmanager
    def stage(self, name: str) -> Iterator[StageRecord]:
        """Profile one stage; nested stages fold peaks into the parent."""
        if self._trace_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracing = True
            if self._stack:
                # Close out the parent's running segment before the
                # child resets the high-water mark.
                parent = self._stack[-1]
                parent["peak"] = max(parent["peak"], self._current_peak())
            self._reset_peak()
        record = StageRecord(
            name=name, wall_seconds=0.0, peak_bytes=0, depth=len(self._stack)
        )
        frame = {"peak": 0}
        self._stack.append(frame)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_seconds = time.perf_counter() - start
            self._stack.pop()
            if self._trace_memory:
                record.peak_bytes = max(frame["peak"], self._current_peak())
                if self._stack:
                    parent = self._stack[-1]
                    parent["peak"] = max(parent["peak"], record.peak_bytes)
                self._reset_peak()
            self.records.append(record)
            if not self._stack and self._started_tracing:
                tracemalloc.stop()
                self._started_tracing = False

    # -- reporting ---------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        return [record.to_dict() for record in self.records]

    def export_jsonl(self, path) -> int:
        """Write one ``kind=stage`` JSON object per record, in recorded
        order (the profile artifact ``--profile-out`` and the warehouse
        ingest read); returns the line count."""
        import json
        from pathlib import Path

        docs = [{"kind": "stage", **record.to_dict()} for record in self.records]
        with Path(path).open("w", encoding="utf-8") as handle:
            for doc in docs:
                handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        return len(docs)

    def report(self, telemetry=None) -> str:
        """Render the stage table and the critical-path summary.

        ``telemetry`` (a :class:`~repro.crawler.telemetry.CrawlTelemetry`)
        adds the slowest-market-lane line.
        """
        if not self.records:
            return "stage profile: no stages recorded"
        header = f"{'stage':<28}{'wall(s)':>10}{'peak(MiB)':>11}"
        lines = ["stage profile", header, "-" * len(header)]
        for record in self.records:
            indent = "  " * record.depth
            lines.append(
                f"{indent + record.name:<28}{record.wall_seconds:>10.3f}"
                f"{record.peak_bytes / (1024 * 1024):>11.2f}"
            )
        lines.append("-" * len(header))
        # Critical path: only top-level stages compete (a nested stage's
        # time is already inside its parent's).
        top = [r for r in self.records if r.depth == 0] or self.records
        slowest = max(top, key=lambda r: r.wall_seconds)
        hungriest = max(top, key=lambda r: r.peak_bytes)
        lines.append(
            f"critical path: slowest stage '{slowest.name}' "
            f"({slowest.wall_seconds:.3f}s of "
            f"{sum(r.wall_seconds for r in top):.3f}s total)"
        )
        lines.append(
            f"peak memory:   stage '{hungriest.name}' "
            f"({hungriest.peak_bytes / (1024 * 1024):.2f} MiB)"
        )
        lane = _slowest_lane(telemetry)
        if lane is not None:
            lines.append(lane)
        return "\n".join(lines)


def _slowest_lane(telemetry) -> Optional[str]:
    if telemetry is None or not getattr(telemetry, "markets", None):
        return None
    lanes = list(telemetry.markets.values())
    slowest = max(lanes, key=lambda m: m.sim_days_backoff + m.sim_days_paced)
    waited = slowest.sim_days_backoff + slowest.sim_days_paced
    return (
        f"slowest lane:  '{slowest.market_id}' waited {waited:.4f} sim days "
        f"(back-off {slowest.sim_days_backoff:.4f} + pacing "
        f"{slowest.sim_days_paced:.4f}) over {slowest.requests} requests"
    )
