"""Render a human-readable campaign report from exported artifacts.

``python -m repro run-report --trace trace.jsonl --metrics metrics.jsonl``
is the offline counterpart of the live run's console output: it
validates the artifacts against :mod:`repro.obs.schema`, re-hydrates
the metrics into a :class:`~repro.obs.metrics.MetricsRegistry`, and
renders the *same* per-market telemetry table the live run printed —
through :meth:`~repro.crawler.telemetry.CrawlTelemetry.from_registry`,
the same view class, over the same series names.  A number in this
report can therefore never disagree with the one the operator saw.

The trace section summarizes the span tree (count / total / max wall
per span name) and replays the breaker's state-transition events, which
is usually the fastest way to see *why* a campaign degraded.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.obs import counts_from_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    HOSTILITY_EVENTS,
    validate_metrics_file,
    validate_trace_file,
)

__all__ = ["render_run_report"]


def _campaigns(registry: MetricsRegistry) -> List[str]:
    """Campaign labels present in the registry (one per crawl)."""
    return registry.label_values("crawl_workers", "campaign")


def _campaign_markets(registry: MetricsRegistry, campaign: str) -> List[str]:
    markets: Set[str] = set()
    for series in registry.series():
        if series.name != "crawl_requests_total":
            continue
        labels = dict(series.labels)
        if labels.get("campaign") == campaign and "market" in labels:
            markets.add(labels["market"])
    return sorted(markets)


def _telemetry_section(docs: List[dict]) -> List[str]:
    # Imported here, not at module top: telemetry itself imports
    # repro.obs.metrics, and keeping the edge one-way at import time
    # makes the layering obvious.
    from repro.crawler.telemetry import CrawlTelemetry

    registry = MetricsRegistry()
    registry.load_dicts(docs)
    lines: List[str] = []
    for campaign in _campaigns(registry):
        telemetry = CrawlTelemetry.from_registry(
            campaign, registry, markets=_campaign_markets(registry, campaign)
        )
        lines.append(telemetry.stats_report())
        lines.append("")
        lines.extend(_hostility_section(telemetry))
    lines.extend(_latency_section(registry))
    return lines


def _hostility_section(telemetry) -> List[str]:
    """Per-market breakdown of the hostile-market counters.

    The totals line in ``stats_report()`` says the fleet fought; this
    table says *which markets* — the operator view that decides where
    identity budget goes.  Omitted entirely for a polite campaign.
    """
    lanes = [
        lane for lane in telemetry.markets.values()
        if lane.logins or lane.token_refreshes or lane.bans_hit
        or lane.identity_rotations
    ]
    if not lanes:
        return []
    header = (
        f"{'market':<14}{'logins':>8}{'refreshes':>11}{'bans':>7}"
        f"{'rotations':>11}"
    )
    lines = [
        f"hostility by market [{telemetry.label}]:",
        header,
        "-" * len(header),
    ]
    for lane in sorted(lanes, key=lambda m: (-m.bans_hit, m.market_id)):
        lines.append(
            f"{lane.market_id:<14}{lane.logins:>8}{lane.token_refreshes:>11}"
            f"{lane.bans_hit:>7}{lane.identity_rotations:>11}"
        )
    lines.append("")
    return lines


def _latency_section(registry: MetricsRegistry) -> List[str]:
    rows = []
    for series in registry.series():
        if series.name != "http_request_wall_seconds" or series.count == 0:
            continue
        market = dict(series.labels).get("market", "?")
        rows.append((series.total / series.count, series.count, market))
    if not rows:
        return []
    total_count = sum(count for _, count, _ in rows)
    total_wall = sum(mean * count for mean, count, _ in rows)
    slowest = max(rows)
    lines = [
        "http service time:",
        f"  fleet: {total_count:,} requests, "
        f"mean {total_wall / total_count * 1e6:.1f}us",
        f"  slowest market: '{slowest[2]}' "
        f"mean {slowest[0] * 1e6:.1f}us over {slowest[1]:,} requests",
        "",
    ]
    return lines


def _trace_section(records: List[dict]) -> List[str]:
    traces = sorted({r["trace_id"] for r in records})
    summary = counts_from_spans(records)
    lines = [f"trace: {len(records)} records, campaigns: {', '.join(traces)}"]
    if summary:
        header = f"{'span':<22}{'count':>8}{'total(s)':>11}{'max(s)':>10}"
        lines.extend([header, "-" * len(header)])
        for name in sorted(summary, key=lambda n: -summary[n][1]):
            count, total, peak = summary[name]
            lines.append(f"{name:<22}{count:>8}{total:>11.3f}{peak:>10.3f}")
    failed: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "span" and record.get("status") != "ok":
            failed[record["status"]] = failed.get(record["status"], 0) + 1
    if failed:
        lines.append(
            "failed spans: "
            + ", ".join(f"{k}={v}" for k, v in sorted(failed.items()))
        )
    hostile: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event" and record.get("name") in HOSTILITY_EVENTS:
            hostile[record["name"]] = hostile.get(record["name"], 0) + 1
    if hostile:
        lines.append(
            "hostility events: "
            + ", ".join(f"{k}={v}" for k, v in sorted(hostile.items()))
        )
    stalls = [
        r for r in records
        if r.get("kind") == "event" and r.get("name") == "lane.stalled"
    ]
    if stalls:
        lines.append("stalled lanes:")
        for event in stalls:
            attrs = event.get("attrs", {})
            sim = event.get("sim_time")
            at = f" @ sim day {sim:.3f}" if sim is not None else ""
            lines.append(
                f"  {event.get('market', '?')}: idle "
                f"{attrs.get('idle_days', 0):.2f}d >= budget "
                f"{attrs.get('budget', 0):.2f}d "
                f"({attrs.get('phase', '?')}){at}"
            )
    transitions = [
        r for r in records
        if r.get("kind") == "event" and r.get("name") == "breaker.transition"
    ]
    if transitions:
        lines.append("breaker transitions:")
        for event in transitions:
            attrs = event.get("attrs", {})
            note = " QUARANTINED" if attrs.get("quarantined") else ""
            sim = event.get("sim_time")
            at = f" @ sim day {sim:.3f}" if sim is not None else ""
            lines.append(
                f"  {event.get('market', '?')}: {attrs.get('from_state', '?')}"
                f" -> {attrs.get('to_state', '?')}"
                f" (trip {attrs.get('trips', '?')}){note}{at}"
            )
    lines.append("")
    return lines


def render_run_report(
    trace_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> str:
    """Validate the given artifacts and render the campaign report.

    Either artifact may be omitted; its section is skipped.  Raises
    :class:`~repro.obs.schema.SchemaError` when a line fails validation.
    """
    if trace_path is None and metrics_path is None:
        raise ValueError("run-report needs a trace and/or a metrics artifact")
    lines: List[str] = ["campaign run report"]
    sources = [str(p) for p in (trace_path, metrics_path) if p is not None]
    lines.append("artifacts: " + ", ".join(sources))
    lines.append("")
    if metrics_path is not None:
        lines.extend(_telemetry_section(validate_metrics_file(metrics_path)))
    if trace_path is not None:
        lines.extend(_trace_section(validate_trace_file(trace_path)))
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
