"""Shared writer for the ``BENCH_*.json`` benchmark artifacts.

Before the run warehouse, every results-writing bench rolled its own
``RESULTS_PATH`` + merge-on-disk boilerplate and the artifact shape
drifted per file (flat section maps, no provenance).  This module is
the single writer they all use now: one :class:`BenchResults` per
bench, one ``record(section, **data)`` call per measurement, and every
artifact comes out in the same self-describing v1 shape::

    {
      "schema": "repro.bench/1",
      "schema_version": 1,
      "bench": "hostility",
      "seed": 7,
      "scale": 0.0002,
      "git_commit": "<sha or null>",
      "sections": {"recovery": {...}}
    }

which is exactly what ``repro obs ingest`` expects.  The loader side
(:func:`load_bench_artifact`) also accepts the legacy flat
``{section: data}`` shape, so pre-v1 artifacts remain ingestable.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchResults",
    "current_git_commit",
    "load_bench_artifact",
]

BENCH_SCHEMA = "repro.bench/1"
BENCH_SCHEMA_VERSION = 1


def current_git_commit() -> Optional[str]:
    """The commit the artifact was produced from, or None off-repo.

    CI exposes the sha directly (``GITHUB_SHA``); local runs ask git.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class BenchResults:
    """One bench file's results: sections merged into a v1 artifact.

    ``record`` merges against whatever is already on disk (bench runs
    within one pytest invocation — and across invocations in CI — each
    write their own section without clobbering the others), stamping
    schema version, seed/scale, and the producing git commit.
    """

    def __init__(
        self,
        name: str,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        path: Optional[Union[str, Path]] = None,
    ):
        self.name = name
        self.seed = seed
        self.scale = scale
        self.path = Path(path) if path is not None else Path(f"BENCH_{name}.json")

    def _existing_sections(self) -> Dict[str, dict]:
        if not self.path.exists():
            return {}
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            isinstance(doc, dict)
            and doc.get("schema") == BENCH_SCHEMA
            and doc.get("bench") == self.name
            and isinstance(doc.get("sections"), dict)
        ):
            return dict(doc["sections"])
        return {}

    def record(self, section: str, **data: object) -> Path:
        """Write one section (merging existing ones); returns the path."""
        sections = self._existing_sections()
        sections[section] = data
        doc = {
            "schema": BENCH_SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "git_commit": current_git_commit(),
            "sections": sections,
        }
        with self.path.open("w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return self.path


def load_bench_artifact(path: Union[str, Path]) -> Tuple[str, dict, Dict[str, dict]]:
    """Load one ``BENCH_*.json``; returns ``(bench, meta, sections)``.

    v1 artifacts carry their own name and provenance; legacy flat
    ``{section: data}`` files get their name from the filename and an
    empty meta.  Raises ``ValueError`` for anything else.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench artifact must be a JSON object")
    if doc.get("schema") == BENCH_SCHEMA:
        sections = doc.get("sections")
        if not isinstance(sections, dict):
            raise ValueError(f"{path}: v1 bench artifact has no sections map")
        meta = {k: v for k, v in doc.items() if k != "sections"}
        return str(doc.get("bench") or _name_from_path(path)), meta, sections
    # Legacy flat shape: every top-level value is a section.
    sections = {}
    for key, value in doc.items():
        sections[str(key)] = value if isinstance(value, dict) else {"value": value}
    return _name_from_path(path), {}, sections


def _name_from_path(path: Path) -> str:
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
