"""Schemas for the exported observability artifacts.

The trace (``--trace-out``) and metrics (``--metrics-out``) artifacts
are JSONL: one self-describing object per line.  Downstream tooling —
the CI observability job, ``run-report``, the bench-trajectory
collector — validates every line against the schemas here before
trusting it, so a format drift fails loudly at the artifact boundary
instead of corrupting a report three tools later.

The validator is deliberately tiny (field name → allowed types, plus a
per-kind dispatch); the repo vendors no JSON-Schema dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

__all__ = [
    "SchemaError",
    "HOSTILITY_EVENTS",
    "validate_trace_obj",
    "validate_metrics_obj",
    "validate_profile_obj",
    "validate_trace_file",
    "validate_metrics_file",
    "validate_profile_file",
    "load_jsonl",
]

NUMBER = (int, float)
OPT_NUMBER = (int, float, type(None))


class SchemaError(ValueError):
    """An artifact line does not match its schema."""


#: field -> (required, allowed types)
FieldSpec = Dict[str, Tuple[bool, tuple]]

TRACE_SPAN_FIELDS: FieldSpec = {
    "kind": (True, (str,)),
    "trace_id": (True, (str,)),
    "span_id": (True, (int,)),
    "parent_id": (True, (int, type(None))),
    "name": (True, (str,)),
    "status": (True, (str,)),
    "wall_start": (True, NUMBER),
    "wall_seconds": (True, NUMBER),
    "sim_start": (True, OPT_NUMBER),
    "sim_end": (True, OPT_NUMBER),
    "market": (False, (str,)),
    "attrs": (False, (dict,)),
}

TRACE_EVENT_FIELDS: FieldSpec = {
    "kind": (True, (str,)),
    "trace_id": (True, (str,)),
    "span_id": (True, (int, type(None))),
    "name": (True, (str,)),
    "wall_start": (True, NUMBER),
    "sim_time": (True, OPT_NUMBER),
    "market": (False, (str,)),
    "attrs": (False, (dict,)),
}

METRICS_FIELDS: FieldSpec = {
    "kind": (True, (str,)),
    "name": (True, (str,)),
    "labels": (True, (dict,)),
    "value": (True, NUMBER),
    "count": (False, (int,)),
    "buckets": (False, (list,)),
    "overflow": (False, (int,)),
    "samples": (False, (list,)),
}

METRIC_KINDS = ("counter", "gauge", "histogram")

PROFILE_FIELDS: FieldSpec = {
    "kind": (True, (str,)),
    "name": (True, (str,)),
    "wall_seconds": (True, NUMBER),
    "peak_bytes": (True, (int,)),
    "depth": (True, (int,)),
}

#: Event names the hostile-market scenario pack emits (``kind=event``
#: trace lines).  The validator does not whitelist event names — any
#: well-formed event passes — but tooling that slices hostility
#: activity out of a trace keys on these.
HOSTILITY_EVENTS = ("auth.login", "ban.hit", "identity.rotate")


def _check_fields(obj: Mapping, spec: FieldSpec, what: str) -> None:
    if not isinstance(obj, Mapping):
        raise SchemaError(f"{what}: expected an object, got {type(obj).__name__}")
    for field, (required, types) in spec.items():
        if field not in obj:
            if required:
                raise SchemaError(f"{what}: missing required field {field!r}")
            continue
        if not isinstance(obj[field], types) or (
            # bool is an int subclass; never valid where numbers go.
            isinstance(obj[field], bool) and bool not in types
        ):
            raise SchemaError(
                f"{what}: field {field!r} has type "
                f"{type(obj[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(obj) - set(spec)
    if unknown:
        raise SchemaError(f"{what}: unknown fields {sorted(unknown)}")


def _check_pairs(obj: Mapping, field: str, what: str) -> None:
    for pair in obj.get(field, ()):
        if (
            not isinstance(pair, list) or len(pair) != 2
            or not all(isinstance(x, NUMBER) and not isinstance(x, bool) for x in pair)
        ):
            raise SchemaError(f"{what}: {field!r} entries must be [number, number]")


def validate_trace_obj(obj: Mapping) -> None:
    """Validate one trace-artifact line (span or event)."""
    kind = obj.get("kind") if isinstance(obj, Mapping) else None
    if kind == "span":
        _check_fields(obj, TRACE_SPAN_FIELDS, "span")
    elif kind == "event":
        _check_fields(obj, TRACE_EVENT_FIELDS, "event")
    else:
        raise SchemaError(f"trace line: kind must be span/event, got {kind!r}")


def validate_metrics_obj(obj: Mapping) -> None:
    """Validate one metrics-artifact line (one series)."""
    _check_fields(obj, METRICS_FIELDS, "metric")
    kind = obj["kind"]
    if kind not in METRIC_KINDS:
        raise SchemaError(f"metric: kind must be one of {METRIC_KINDS}, got {kind!r}")
    for key, value in obj["labels"].items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise SchemaError("metric: labels must map str -> str")
    if kind == "histogram":
        if "count" not in obj or "buckets" not in obj:
            raise SchemaError("metric: histogram needs count and buckets")
        _check_pairs(obj, "buckets", "metric")
    if "samples" in obj:
        _check_pairs(obj, "samples", "metric")


def validate_profile_obj(obj: Mapping) -> None:
    """Validate one profile-artifact line (a stage record)."""
    _check_fields(obj, PROFILE_FIELDS, "stage")
    if obj["kind"] != "stage":
        raise SchemaError(f"profile line: kind must be stage, got {obj['kind']!r}")
    if obj["depth"] < 0 or obj["peak_bytes"] < 0:
        raise SchemaError("stage: depth and peak_bytes must be non-negative")


def load_jsonl(path: Union[str, Path]) -> List[dict]:
    """Load a JSONL artifact (no validation)."""
    docs: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                docs.append(json.loads(line))
            except ValueError as exc:
                raise SchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
    return docs


def _validate_file(path, validator) -> List[dict]:
    docs = load_jsonl(path)
    for lineno, doc in enumerate(docs, 1):
        try:
            validator(doc)
        except SchemaError as exc:
            raise SchemaError(f"{path}:{lineno}: {exc}") from exc
    return docs


def validate_trace_file(path: Union[str, Path]) -> List[dict]:
    """Load and validate a trace artifact; returns its records."""
    return _validate_file(path, validate_trace_obj)


def validate_metrics_file(path: Union[str, Path]) -> List[dict]:
    """Load and validate a metrics artifact; returns its series."""
    return _validate_file(path, validate_metrics_obj)


def validate_profile_file(path: Union[str, Path]) -> List[dict]:
    """Load and validate a profile artifact; returns its stage records."""
    return _validate_file(path, validate_profile_obj)
