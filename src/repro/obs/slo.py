"""Declarative SLO rules over the run warehouse (``repro obs check``).

Rules live in a committed TOML file (``slo.toml``) and are evaluated
against one ingested run — CI gates on the exit status, so a latency
blow-up, a dead-letter surge, or a bench-floor regression fails the
build with a *named* rule instead of a number someone has to notice.

Rule kinds:

* ``quantile_max``   — a histogram quantile (bucket upper bound at the
  requested quantile, summed across the metric's label sets) must stay
  at or below ``max``.
* ``ratio_max``      — ``sum(numerator) / sum(denominator)`` at or
  below ``max`` (a zero denominator passes with ratio 0).
* ``counter_max`` / ``counter_min`` — a summed metric against a bound.
* ``bench_max`` / ``bench_min`` — a field of an ingested
  ``BENCH_*.json`` section against a bound; a missing artifact SKIPs
  (benches are optional per run), because a missing bench is a coverage
  gap, not a regression.
* ``regression_max`` — the run's summed metric divided by the median of
  the same metric over the fingerprint's run history must stay at or
  below ``max_ratio``; fewer than ``min_history`` baseline runs SKIPs
  (a regression verdict needs a population, not a coin flip).

Determinism contract (see DESIGN.md): evaluation reads only the
warehouse and the rule file — no clocks, no environment — and every
number renders through one fixed formatter, so the same inputs produce
a byte-identical report.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.warehouse import RunWarehouse, robust_score

__all__ = ["SloError", "SloRule", "RuleResult", "load_rules", "check_run",
           "render_check_report"]

PASS, FAIL, SKIP = "PASS", "FAIL", "SKIP"

RULE_KINDS = (
    "quantile_max", "ratio_max", "counter_max", "counter_min",
    "bench_max", "bench_min", "regression_max",
)


class SloError(ValueError):
    """A rule file is malformed."""


@dataclass(frozen=True)
class SloRule:
    """One declarative rule (already validated for its kind)."""

    name: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def param(self, key: str):
        value = self.params.get(key)
        if value is None:
            raise SloError(f"rule {self.name!r} ({self.kind}) needs {key!r}")
        return value


@dataclass
class RuleResult:
    """One rule's verdict against one run."""

    rule: SloRule
    status: str
    value: Optional[float]
    bound: Optional[float]
    detail: str = ""


_REQUIRED = {
    "quantile_max": ("metric", "quantile", "max"),
    "ratio_max": ("numerator", "denominator", "max"),
    "counter_max": ("metric", "max"),
    "counter_min": ("metric", "min"),
    "bench_max": ("bench", "section", "field", "max"),
    "bench_min": ("bench", "section", "field", "min"),
    "regression_max": ("metric", "max_ratio"),
}


def load_rules(path: Union[str, Path]) -> List[SloRule]:
    """Parse and validate a ``slo.toml`` rule file."""
    with Path(path).open("rb") as handle:
        try:
            doc = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise SloError(f"{path}: {exc}") from exc
    raw_rules = doc.get("rule")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise SloError(f"{path}: expected at least one [[rule]] table")
    rules: List[SloRule] = []
    seen: set = set()
    for i, raw in enumerate(raw_rules):
        if not isinstance(raw, dict):
            raise SloError(f"{path}: rule #{i + 1} is not a table")
        name = raw.get("name")
        kind = raw.get("kind")
        if not isinstance(name, str) or not name:
            raise SloError(f"{path}: rule #{i + 1} has no name")
        if name in seen:
            raise SloError(f"{path}: duplicate rule name {name!r}")
        seen.add(name)
        if kind not in RULE_KINDS:
            raise SloError(
                f"{path}: rule {name!r}: kind must be one of {RULE_KINDS}, "
                f"got {kind!r}"
            )
        params = {k: v for k, v in raw.items() if k not in ("name", "kind")}
        rule = SloRule(name=name, kind=kind, params=params)
        for key in _REQUIRED[kind]:
            rule.param(key)  # raises SloError when missing
        rules.append(rule)
    return rules


# -- evaluation ------------------------------------------------------------


def _histogram_quantile(
    series: Sequence[Mapping], quantile: float
) -> Optional[float]:
    """The bucket upper bound at ``quantile``, buckets summed across
    label sets.  None when the histograms saw no observations; +Inf
    observations resolve to infinity (which fails any finite bound)."""
    bounds: Optional[List[float]] = None
    counts: List[int] = []
    overflow = 0
    total = 0
    for doc in series:
        if doc.get("kind") != "histogram":
            continue
        buckets = doc.get("buckets", [])
        if bounds is None:
            bounds = [float(b) for b, _ in buckets]
            counts = [0] * len(bounds)
        for i, (_, count) in enumerate(buckets[:len(counts)]):
            counts[i] += int(count)
        overflow += int(doc.get("overflow", 0))
        total += int(doc.get("count", 0))
    if not total or bounds is None:
        return None
    target = quantile * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")


def _metric_docs(
    warehouse: RunWarehouse, run_id: str, name: str
) -> List[Mapping]:
    return [
        doc for (metric, _), doc in sorted(
            warehouse.metric_series(run_id).items()
        )
        if metric == name
    ]


def _bound_result(
    rule: SloRule, value: Optional[float], bound: float, upper: bool,
    detail: str = "",
) -> RuleResult:
    if value is None:
        return RuleResult(rule, SKIP, None, bound, detail or "no data")
    ok = value <= bound if upper else value >= bound
    return RuleResult(rule, PASS if ok else FAIL, value, bound, detail)


def evaluate_rule(
    warehouse: RunWarehouse, manifest: Mapping, rule: SloRule
) -> RuleResult:
    run_id = manifest["run_id"]
    if rule.kind == "quantile_max":
        value = _histogram_quantile(
            _metric_docs(warehouse, run_id, str(rule.param("metric"))),
            float(rule.param("quantile")),
        )
        return _bound_result(
            rule, value, float(rule.param("max")), upper=True,
            detail=f"p{float(rule.param('quantile')) * 100:g} "
                   f"of {rule.param('metric')}",
        )
    if rule.kind == "ratio_max":
        numerator = warehouse.metric_total(run_id, str(rule.param("numerator")))
        denominator = warehouse.metric_total(
            run_id, str(rule.param("denominator"))
        )
        value = (numerator / denominator) if denominator else 0.0
        return _bound_result(
            rule, value, float(rule.param("max")), upper=True,
            detail=f"{numerator:g}/{denominator:g}",
        )
    if rule.kind in ("counter_max", "counter_min"):
        upper = rule.kind == "counter_max"
        value = warehouse.metric_total(run_id, str(rule.param("metric")))
        bound = float(rule.param("max" if upper else "min"))
        return _bound_result(rule, value, bound, upper=upper)
    if rule.kind in ("bench_max", "bench_min"):
        upper = rule.kind == "bench_max"
        value = warehouse.bench_value(
            run_id, str(rule.param("bench")), str(rule.param("section")),
            str(rule.param("field")),
        )
        bound = float(rule.param("max" if upper else "min"))
        return _bound_result(
            rule, value, bound, upper=upper,
            detail=f"{rule.param('bench')}/{rule.param('section')}"
                   f".{rule.param('field')}"
                   + ("" if value is not None else " not ingested"),
        )
    if rule.kind == "regression_max":
        metric = str(rule.param("metric"))
        min_history = int(rule.params.get("min_history", 3))
        history = warehouse.history(
            manifest.get("fingerprint") or "", exclude=(run_id,)
        )
        baseline = [
            warehouse.metric_total(m["run_id"], metric) for m in history
        ]
        baseline = [v for v in baseline if v > 0]
        if len(baseline) < min_history:
            return RuleResult(
                rule, SKIP, None, float(rule.param("max_ratio")),
                f"history {len(baseline)} < min_history {min_history}",
            )
        current = warehouse.metric_total(run_id, metric)
        median = sorted(baseline)[len(baseline) // 2] if len(baseline) % 2 \
            else sum(sorted(baseline)[len(baseline) // 2 - 1:
                                      len(baseline) // 2 + 1]) / 2.0
        value = current / median if median else None
        score = robust_score(current, baseline)
        return _bound_result(
            rule, value, float(rule.param("max_ratio")), upper=True,
            detail=f"median of {len(baseline)} runs"
                   + (f", score={score:.6g}" if score is not None else ""),
        )
    raise SloError(f"unknown rule kind {rule.kind!r}")  # pragma: no cover


def check_run(
    warehouse: RunWarehouse, rules: Sequence[SloRule], ref: str = "-1"
) -> Tuple[List[RuleResult], dict]:
    """Evaluate every rule against one run; returns (results, manifest)."""
    manifest = warehouse.run(ref)
    return [evaluate_rule(warehouse, manifest, r) for r in rules], manifest


def render_check_report(
    results: Sequence[RuleResult], manifest: Mapping
) -> str:
    """Deterministic text report (same inputs -> identical bytes)."""
    lines = [
        f"slo check: run {manifest['run_id']} ({manifest['label']})"
        + (
            f" fingerprint {manifest['fingerprint']}"
            if manifest.get("fingerprint") else ""
        ),
    ]
    width = max((len(r.rule.name) for r in results), default=4)
    for result in results:
        value = f"{result.value:.6g}" if result.value is not None else "-"
        bound = f"{result.bound:.6g}" if result.bound is not None else "-"
        comparator = ">=" if result.rule.kind.endswith("_min") else "<="
        line = (
            f"{result.status:<5} {result.rule.name:<{width}} "
            f"[{result.rule.kind}] {value} {comparator} {bound}"
        )
        if result.detail:
            line += f" ({result.detail})"
        lines.append(line)
    failed = [r for r in results if r.status == FAIL]
    skipped = [r for r in results if r.status == SKIP]
    summary = (
        f"{len(results)} rules: "
        f"{len(results) - len(failed) - len(skipped)} passed, "
        f"{len(failed)} failed, {len(skipped)} skipped"
    )
    if failed:
        summary += " — BREACH: " + ", ".join(r.rule.name for r in failed)
    lines.append(summary)
    return "\n".join(lines)


def check_passed(results: Sequence[RuleResult]) -> bool:
    return not any(r.status == FAIL for r in results)


def results_to_json(
    results: Sequence[RuleResult], manifest: Mapping
) -> str:
    """Machine-readable verdicts (deterministic serialization)."""
    doc = {
        "run_id": manifest["run_id"],
        "label": manifest["label"],
        "fingerprint": manifest.get("fingerprint"),
        "results": [
            {
                "rule": r.rule.name,
                "kind": r.rule.kind,
                "status": r.status,
                "value": r.value,
                "bound": r.bound,
                "detail": r.detail,
            }
            for r in results
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
