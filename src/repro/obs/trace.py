"""Span tracing with dual simulated/wall timestamps.

A crawl campaign is a tree of work: the campaign contains per-market
discovery, search rounds, and APK batches; each of those contains HTTP
requests; requests sleep through 429 back-off.  :class:`SpanTracer`
records that tree as **spans** — one record per unit of work with a
name, a parent, attributes, and *two* clocks: wall time (what the
operator waits for) and the simulated campaign clock (what the fleet
model charges).  Point-in-time facts that are not work — a circuit
breaker flipping open, a market entering quarantine — are recorded as
**events**.

Threading: market lanes run concurrently, so the tracer keeps one
open-span stack *per thread* (parentage follows the thread that does
the work, matching the engine's lane-ownership rule) and appends
finished records under a lock.  A span opened with ``root=True`` (the
campaign span) additionally becomes the fallback parent for threads
whose own stack is empty — that is how a discovery task running on a
pool thread still hangs off the campaign root.

The disabled path matters more than the enabled one: a campaign run
without ``--trace-out`` must not pay for the instrumentation it is not
using.  :data:`NULL_SPAN` is a shared, stateless no-op that satisfies
the span protocol (context manager + attribute setting), and the hot
paths (the HTTP client) skip even that by branching on ``None``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Span", "SpanTracer", "NullSpan", "NULL_SPAN"]


class NullSpan:
    """A no-op span: context manager, attribute sink, nothing recorded.

    A single shared instance stands in wherever tracing is disabled, so
    ``with obs.span(...) as span: span["key"] = value`` costs two
    trivial method calls and no allocation.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __setitem__(self, key: str, value: object) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """One unit of traced work (use as a context manager)."""

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name", "market",
        "attrs", "status", "wall_start", "wall_seconds", "sim_start",
        "sim_end", "_clock", "_perf_start",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        market: Optional[str],
        clock,
        attrs: Dict[str, object],
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.market = market
        self.attrs = attrs
        self.status = "ok"
        self._clock = clock
        self.wall_start = 0.0
        self.wall_seconds = 0.0
        self.sim_start: Optional[float] = None
        self.sim_end: Optional[float] = None
        self._perf_start = 0.0

    def __setitem__(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.wall_start = time.time()
        self._perf_start = time.perf_counter()
        if self._clock is not None:
            self.sim_start = self._clock.now
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._perf_start
        if self._clock is not None:
            self.sim_end = self._clock.now
        if exc_type is not None:
            self.status = exc_type.__name__
        self.tracer._pop(self)
        self.tracer._record(self)
        return False

    def to_dict(self) -> dict:
        doc = {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "wall_start": self.wall_start,
            "wall_seconds": self.wall_seconds,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
        }
        if self.market is not None:
            doc["market"] = self.market
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc


class SpanTracer:
    """Collects spans and events for one run (possibly many campaigns)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[dict] = []
        self._local = threading.local()
        self._next_span_id = 1
        self._root: Optional[Span] = None
        self.trace_id = "run"

    def set_trace(self, trace_id: str) -> None:
        """Name the current trace; campaigns set their label here."""
        self.trace_id = trace_id

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self._root is span:
            self._root = None

    def _record(self, span: Span) -> None:
        with self._lock:
            self._records.append(span.to_dict())

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(
        self,
        name: str,
        market: Optional[str] = None,
        clock=None,
        root: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span (enter the returned context manager to start it).

        ``clock`` is any object with a ``now`` attribute — the shared
        campaign clock, or a market lane's :class:`LaneClock` — read at
        entry and exit for the simulated timestamps.  ``root=True``
        makes this span the fallback parent for spans opened on threads
        with an empty stack (worker lanes), until it exits.
        """
        parent = self.current_span() or self._root
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        span = Span(
            self,
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            market=market,
            clock=clock,
            attrs=dict(attrs),
        )
        if root:
            self._root = span
        return span

    # -- events ------------------------------------------------------------

    def event(
        self,
        name: str,
        market: Optional[str] = None,
        sim_time: Optional[float] = None,
        **attrs: object,
    ) -> None:
        """Record a point-in-time fact (breaker transition, quarantine)."""
        parent = self.current_span()
        doc = {
            "kind": "event",
            "trace_id": self.trace_id,
            "span_id": parent.span_id if parent is not None else None,
            "name": name,
            "wall_start": time.time(),
            "sim_time": sim_time,
        }
        if market is not None:
            doc["market"] = market
        if attrs:
            doc["attrs"] = attrs
        with self._lock:
            self._records.append(doc)

    # -- export ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> List[dict]:
        """A copy of everything recorded so far (spans and events)."""
        with self._lock:
            return list(self._records)

    def spans(self, name: Optional[str] = None) -> List[dict]:
        return [
            r for r in self.records()
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[dict]:
        return [
            r for r in self.records()
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one JSON object per span/event; returns the line count."""
        records = self.records()
        with Path(path).open("w", encoding="utf-8") as handle:
            for doc in records:
                handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        return len(records)
