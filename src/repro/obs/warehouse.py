"""The run warehouse: every campaign's artifacts in one queryable store.

Single runs already export rich artifacts (trace/metrics JSONL, stage
profiles, ``BENCH_*.json``), but each file was an island — nothing
compared round N against rounds 1..N-1, which is exactly the run-over-
run bookkeeping the paper's fleet lived on.  :class:`RunWarehouse`
ingests a run's artifacts into one SQLite database (reusing
:class:`repro.store.columnar.ColumnStore`'s segment-table machinery)
keyed by a **run id** (content hash of the ingested artifacts — re-
ingesting identical artifacts is a no-op) and a **config fingerprint**
(hash of the behavior-relevant study config — the key run history is
grouped by for baselines).

Families (see DESIGN.md for the schema contract):

* ``runs``      — one row per ingested run: the manifest.
* ``metrics``   — one row per metric series (full doc in the payload).
* ``spans``     — per ``(name, market)`` span aggregates.
* ``events``    — per ``(name, market)`` event counts.
* ``stages``    — the stage profile, in recorded order.
* ``bench``     — one row per ``BENCH_*.json`` section.

:meth:`RunWarehouse.diff` compares two runs: **deterministic** series
(everything that does not measure wall time) must match exactly — any
mismatch means the runs diverged behaviorally, not just in speed —
while **timing** series and stage wall times are reported as deltas and
judged against robust median/MAD baselines built from the fingerprint's
run history.  All rendering is deterministic: same warehouse contents,
byte-identical report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.results import load_bench_artifact
from repro.obs.schema import (
    SchemaError,
    validate_metrics_file,
    validate_profile_file,
    validate_trace_file,
)
from repro.store.columnar import ColumnStore

__all__ = [
    "RunWarehouse",
    "WarehouseError",
    "RUN_SCHEMA",
    "config_fingerprint",
    "is_timing_metric",
]

RUN_SCHEMA = "repro.run/1"

#: Study-config fields that cannot change run content (worker widths,
#: cache/storage/output plumbing, monitoring) — the digest-invariance
#: contract the repo's tests enforce.  Everything else fingerprints.
DIGEST_INVARIANT_FIELDS = frozenset({
    "crawl_workers", "analysis_workers", "gen_workers",
    "checkpoint_dir", "resume", "artifact_cache_dir",
    "store_backend", "store_batch_size", "store_spill_threshold",
    "store_dir", "segment_cache",
    "trace_out", "metrics_out", "profile", "profile_out", "run_meta",
    "monitor", "monitor_interval", "stall_budget",
    "transport", "crawl_engine", "crawl_pipeline",
})


class WarehouseError(Exception):
    """Invalid warehouse usage (unknown run, ambiguous reference, ...)."""


def config_fingerprint(config: object) -> str:
    """Hash the behavior-relevant study config to a 16-hex-char key.

    Accepts a :class:`~repro.core.config.StudyConfig` or a plain
    mapping (an ingested manifest's ``config``).  Fields on the
    digest-invariance list are excluded, so a run at ``--workers 8``
    with a sqlite store fingerprints identically to its serial
    in-memory twin — which is exactly when their digests must agree.
    """
    if is_dataclass(config) and not isinstance(config, type):
        doc: Mapping = asdict(config)
    elif isinstance(config, Mapping):
        doc = config
    else:
        raise TypeError(f"cannot fingerprint a {type(config).__name__}")
    relevant = {
        str(k): v for k, v in doc.items() if k not in DIGEST_INVARIANT_FIELDS
    }
    blob = json.dumps(relevant, sort_keys=True, default=repr)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


def is_timing_metric(name: str) -> bool:
    """Whether a series measures wall time (nondeterministic by nature).

    Everything else in the registry — request/record counters, sim-day
    accumulations, queue depths, heartbeat samples — is a deterministic
    function of the run config and must diff clean.
    """
    return "wall" in name


def _canonical_labels(labels: Mapping) -> str:
    return json.dumps(
        {str(k): str(v) for k, v in labels.items()}, sort_keys=True,
        separators=(",", ":"),
    )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: Sequence[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def robust_score(value: float, history: Sequence[float]) -> Optional[float]:
    """|value - median| in (scaled) MAD units, or None when undefined.

    1.4826 scales the MAD to the standard deviation of a normal
    distribution; a score above ~3 is a conventional outlier.  A zero
    MAD (constant history) falls back to 10% of the median as the unit
    so a genuinely flat series still flags real movement.
    """
    if not history:
        return None
    center = _median(history)
    spread = 1.4826 * _mad(history, center)
    if spread <= 0:
        spread = abs(center) * 0.10
    if spread <= 0:
        return None
    return abs(value - center) / spread


def _fmt(value: float) -> str:
    """Deterministic, locale-free number rendering for reports."""
    return f"{value:.6g}"


class RunWarehouse:
    """SQLite-backed store of ingested runs (see module docstring)."""

    def __init__(self, path: Union[str, Path], batch_size: int = 512):
        self.path = Path(path)
        self._store = ColumnStore(self.path, batch_size=batch_size)
        self._runs = self._store.family(
            "runs",
            key_columns=[
                ("run_id", "TEXT"), ("label", "TEXT"), ("seed", "INTEGER"),
                ("scale", "REAL"), ("fingerprint", "TEXT"),
            ],
            unique=["run_id"],
        )
        self._metrics = self._store.family(
            "metrics",
            key_columns=[
                ("run_id", "TEXT"), ("name", "TEXT"), ("labels", "TEXT"),
                ("kind", "TEXT"), ("value", "REAL"),
            ],
            indexes=[["run_id", "name"]],
        )
        self._spans = self._store.family(
            "spans",
            key_columns=[
                ("run_id", "TEXT"), ("name", "TEXT"), ("market", "TEXT"),
                ("count", "INTEGER"), ("wall_total", "REAL"),
                ("wall_max", "REAL"),
            ],
            indexes=[["run_id"]],
        )
        self._events = self._store.family(
            "events",
            key_columns=[
                ("run_id", "TEXT"), ("name", "TEXT"), ("market", "TEXT"),
                ("count", "INTEGER"),
            ],
            indexes=[["run_id"]],
        )
        self._stages = self._store.family(
            "stages",
            key_columns=[
                ("run_id", "TEXT"), ("seq", "INTEGER"), ("name", "TEXT"),
                ("depth", "INTEGER"), ("wall_seconds", "REAL"),
                ("peak_bytes", "INTEGER"),
            ],
            indexes=[["run_id"]],
        )
        self._bench = self._store.family(
            "bench",
            key_columns=[
                ("run_id", "TEXT"), ("bench", "TEXT"), ("section", "TEXT"),
            ],
            indexes=[["run_id"]],
        )

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "RunWarehouse":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- ingest ------------------------------------------------------------

    def ingest_run(
        self,
        label: str = "run",
        meta: Optional[Union[str, Path, Mapping]] = None,
        metrics: Optional[Union[str, Path]] = None,
        trace: Optional[Union[str, Path]] = None,
        profile: Optional[Union[str, Path]] = None,
        bench: Sequence[Union[str, Path]] = (),
    ) -> dict:
        """Ingest one run's artifacts; returns the stored manifest.

        ``meta`` is the run manifest the study wrote (``--run-meta``),
        either a path or a pre-loaded mapping; without one a minimal
        manifest is synthesized from the label.  Artifacts are schema-
        validated before anything lands, and re-ingesting byte-identical
        artifacts is detected by the content-derived run id and skipped
        (``manifest["created"]`` is False).
        """
        if meta is not None and not isinstance(meta, Mapping):
            with Path(meta).open("r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if not isinstance(meta, Mapping):
                raise SchemaError("run meta must be a JSON object")
        meta = dict(meta or {})
        if meta and meta.get("schema") not in (None, RUN_SCHEMA):
            raise SchemaError(
                f"run meta: unknown schema {meta.get('schema')!r} "
                f"(expected {RUN_SCHEMA})"
            )
        label = str(meta.get("label", label))

        hasher = hashlib.blake2b(digest_size=8)
        hasher.update(
            json.dumps(meta, sort_keys=True, default=repr).encode("utf-8")
        )
        metric_docs = trace_docs = stage_docs = None
        bench_docs: List[Tuple[str, dict, Dict[str, dict]]] = []
        for tag, path in (("metrics", metrics), ("trace", trace),
                          ("profile", profile)):
            if path is None:
                continue
            hasher.update(tag.encode() + b"\x00" + Path(path).read_bytes())
        for path in bench:
            hasher.update(b"bench\x00" + Path(path).read_bytes())
        if metrics is not None:
            metric_docs = validate_metrics_file(metrics)
        if trace is not None:
            trace_docs = validate_trace_file(trace)
        if profile is not None:
            stage_docs = validate_profile_file(profile)
        for path in bench:
            try:
                bench_docs.append(load_bench_artifact(path))
            except ValueError as exc:
                raise SchemaError(str(exc)) from exc
        run_id = hasher.hexdigest()

        existing = self._runs.get(run_id=run_id)
        if existing is not None:
            manifest = json.loads(existing[-1])
            manifest["created"] = False
            return manifest

        counts = {
            "metrics": len(metric_docs or ()),
            "trace": len(trace_docs or ()),
            "stages": len(stage_docs or ()),
            "bench_sections": sum(len(s) for _, _, s in bench_docs),
        }
        fingerprint = ""
        if isinstance(meta.get("config"), Mapping):
            fingerprint = config_fingerprint(meta["config"])
        manifest = {
            "schema": RUN_SCHEMA,
            "run_id": run_id,
            "label": label,
            "seed": meta.get("seed"),
            "scale": meta.get("scale"),
            "fingerprint": fingerprint,
            "git_commit": meta.get("git_commit"),
            "config": meta.get("config"),
            "digests": meta.get("digests"),
            "artifacts": {
                "metrics": str(metrics) if metrics is not None else None,
                "trace": str(trace) if trace is not None else None,
                "profile": str(profile) if profile is not None else None,
                "bench": [str(p) for p in bench],
            },
            "counts": counts,
        }
        self._runs.append(
            run_id, label,
            int(meta["seed"]) if meta.get("seed") is not None else None,
            float(meta["scale"]) if meta.get("scale") is not None else None,
            fingerprint, json.dumps(manifest, sort_keys=True),
        )
        for doc in metric_docs or ():
            self._metrics.append(
                run_id, doc["name"], _canonical_labels(doc.get("labels", {})),
                doc["kind"], float(doc["value"]),
                json.dumps(doc, sort_keys=True),
            )
        if trace_docs is not None:
            self._ingest_trace(run_id, trace_docs)
        for seq, doc in enumerate(stage_docs or ()):
            self._stages.append(
                run_id, seq, doc["name"], int(doc.get("depth", 0)),
                float(doc["wall_seconds"]), int(doc.get("peak_bytes", 0)),
                json.dumps(doc, sort_keys=True),
            )
        for bench_name, bench_meta, sections in bench_docs:
            for section, data in sorted(sections.items()):
                self._bench.append(
                    run_id, bench_name, section,
                    json.dumps({"meta": bench_meta, "data": data},
                               sort_keys=True),
                )
        self._store.flush()
        manifest["created"] = True
        return manifest

    def _ingest_trace(self, run_id: str, docs: List[dict]) -> None:
        spans: Dict[Tuple[str, str], List[float]] = {}
        events: Dict[Tuple[str, str], int] = {}
        for doc in docs:
            key = (doc["name"], doc.get("market") or "")
            if doc["kind"] == "span":
                agg = spans.setdefault(key, [0, 0.0, 0.0])
                wall = float(doc["wall_seconds"])
                agg[0] += 1
                agg[1] += wall
                agg[2] = max(agg[2], wall)
            else:
                events[key] = events.get(key, 0) + 1
        for (name, market), (count, total, peak) in sorted(spans.items()):
            self._spans.append(
                run_id, name, market, int(count), total, peak, None
            )
        for (name, market), count in sorted(events.items()):
            self._events.append(run_id, name, market, count, None)

    # -- queries -----------------------------------------------------------

    def runs(self) -> List[dict]:
        """Every ingested run's manifest, in ingest order."""
        return [
            json.loads(row[-1])
            for row in self._runs.scan()
        ]

    def run(self, ref: str) -> dict:
        """Resolve a run reference to its manifest.

        Accepts a full run id, a unique run-id prefix, a label (most
        recently ingested run wins), or a negative index (``-1`` = the
        latest ingested run).
        """
        manifests = self.runs()
        if not manifests:
            raise WarehouseError("warehouse is empty")
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(manifests):
                raise WarehouseError(
                    f"run {ref}: only {len(manifests)} runs ingested"
                )
            return manifests[index]
        by_prefix = [m for m in manifests if m["run_id"].startswith(ref)]
        if len(by_prefix) == 1:
            return by_prefix[0]
        if len(by_prefix) > 1:
            raise WarehouseError(f"run id prefix {ref!r} is ambiguous")
        by_label = [m for m in manifests if m["label"] == ref]
        if by_label:
            return by_label[-1]
        raise WarehouseError(f"no run matches {ref!r}")

    def metric_series(self, run_id: str) -> Dict[Tuple[str, str], dict]:
        """``(name, canonical labels) -> series doc`` for one run."""
        return {
            (row[1], row[2]): json.loads(row[-1])
            for row in self._metrics.scan(run_id=run_id)
        }

    def metric_total(self, run_id: str, name: str) -> float:
        """Sum of a metric's values across its label sets."""
        return sum(
            float(row[4]) for row in self._metrics.scan(run_id=run_id, name=name)
        )

    def stage_walls(self, run_id: str) -> Dict[str, float]:
        """Total wall seconds per top-level stage name."""
        walls: Dict[str, float] = {}
        for row in self._stages.scan(run_id=run_id):
            _, _, name, depth, wall, _ = row[:6]
            if int(depth) == 0:
                walls[name] = walls.get(name, 0.0) + float(wall)
        return walls

    def bench_value(
        self, run_id: str, bench: str, section: str, field: str
    ) -> Optional[float]:
        row = self._bench.get(run_id=run_id, bench=bench, section=section)
        if row is None:
            return None
        data = json.loads(row[-1]).get("data", {})
        value = data.get(field)
        return float(value) if isinstance(value, (int, float)) else None

    def history(
        self, fingerprint: str, exclude: Sequence[str] = ()
    ) -> List[dict]:
        """Prior runs sharing a fingerprint (baseline population)."""
        if not fingerprint:
            return []
        skip = set(exclude)
        return [
            m for m in self.runs()
            if m["fingerprint"] == fingerprint and m["run_id"] not in skip
        ]

    # -- diff --------------------------------------------------------------

    def diff(self, ref_a: str, ref_b: str) -> dict:
        """Compare two ingested runs (see module docstring for semantics)."""
        a, b = self.run(ref_a), self.run(ref_b)
        series_a = self.metric_series(a["run_id"])
        series_b = self.metric_series(b["run_id"])

        mismatches: List[dict] = []
        timing: Dict[str, List[float]] = {}
        for key in sorted(set(series_a) | set(series_b)):
            name, labels = key
            doc_a, doc_b = series_a.get(key), series_b.get(key)
            if is_timing_metric(name):
                totals = timing.setdefault(name, [0.0, 0.0])
                totals[0] += float(doc_a["value"]) if doc_a else 0.0
                totals[1] += float(doc_b["value"]) if doc_b else 0.0
                continue
            if doc_a is None or doc_b is None:
                mismatches.append({
                    "name": name, "labels": labels,
                    "a": doc_a and doc_a["value"],
                    "b": doc_b and doc_b["value"],
                    "why": "only in a" if doc_b is None else "only in b",
                })
            elif not self._series_equal(doc_a, doc_b):
                mismatches.append({
                    "name": name, "labels": labels,
                    "a": doc_a["value"], "b": doc_b["value"],
                    "why": "values differ",
                })

        history = self.history(
            b["fingerprint"], exclude=(a["run_id"], b["run_id"])
        )
        timing_rows = []
        for name in sorted(timing):
            value_a, value_b = timing[name]
            baseline = [
                self.metric_total(m["run_id"], name) for m in history
            ]
            timing_rows.append({
                "name": name, "a": value_a, "b": value_b,
                "ratio": (value_b / value_a) if value_a else None,
                "score": robust_score(value_b, baseline),
            })

        stages_a = self.stage_walls(a["run_id"])
        stages_b = self.stage_walls(b["run_id"])
        stage_rows = []
        for name in sorted(set(stages_a) | set(stages_b)):
            wall_a, wall_b = stages_a.get(name), stages_b.get(name)
            baseline = [
                walls[name] for m in history
                if name in (walls := self.stage_walls(m["run_id"]))
            ]
            stage_rows.append({
                "name": name, "a": wall_a, "b": wall_b,
                "ratio": (
                    wall_b / wall_a
                    if wall_a and wall_b is not None else None
                ),
                "score": (
                    robust_score(wall_b, baseline)
                    if wall_b is not None else None
                ),
            })

        return {
            "a": a, "b": b,
            "clean": not mismatches,
            "same_fingerprint": (
                bool(a["fingerprint"])
                and a["fingerprint"] == b["fingerprint"]
            ),
            "mismatches": mismatches,
            "timing": timing_rows,
            "stages": stage_rows,
            "history_runs": len(history),
        }

    @staticmethod
    def _series_equal(doc_a: Mapping, doc_b: Mapping) -> bool:
        if doc_a["kind"] != doc_b["kind"]:
            return False
        if doc_a["kind"] == "histogram":
            # Bucket shape and population are the deterministic parts.
            return (
                doc_a["count"] == doc_b["count"]
                and doc_a["buckets"] == doc_b["buckets"]
                and doc_a.get("overflow", 0) == doc_b.get("overflow", 0)
                and doc_a["value"] == doc_b["value"]
            )
        return (
            doc_a["value"] == doc_b["value"]
            and doc_a.get("samples") == doc_b.get("samples")
        )

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def render_runs(manifests: Sequence[Mapping]) -> str:
        header = (
            f"{'run_id':<18}{'label':<16}{'seed':>6}{'scale':>10}"
            f"{'fingerprint':>18}{'metrics':>9}{'stages':>8}{'bench':>7}"
        )
        lines = [header, "-" * len(header)]
        for m in manifests:
            counts = m.get("counts", {})
            lines.append(
                f"{m['run_id']:<18}{m['label'][:15]:<16}"
                f"{m['seed'] if m['seed'] is not None else '-':>6}"
                f"{m['scale'] if m['scale'] is not None else '-':>10}"
                f"{m['fingerprint'] or '-':>18}"
                f"{counts.get('metrics', 0):>9}{counts.get('stages', 0):>8}"
                f"{counts.get('bench_sections', 0):>7}"
            )
        return "\n".join(lines)

    @staticmethod
    def render_diff(diff: Mapping) -> str:
        a, b = diff["a"], diff["b"]
        lines = [
            f"run diff: {a['run_id']} ({a['label']}) "
            f"-> {b['run_id']} ({b['label']})",
            "fingerprints: "
            + (
                f"identical ({a['fingerprint']})"
                if diff["same_fingerprint"]
                else f"{a['fingerprint'] or '-'} vs {b['fingerprint'] or '-'}"
            ),
        ]
        mismatches = diff["mismatches"]
        if mismatches:
            lines.append(f"DIVERGED: {len(mismatches)} deterministic series differ")
            for row in mismatches[:20]:
                lines.append(
                    f"  {row['name']}{row['labels']}: "
                    f"{row['a']} -> {row['b']} ({row['why']})"
                )
            if len(mismatches) > 20:
                lines.append(f"  ... and {len(mismatches) - 20} more")
        else:
            lines.append("clean: all deterministic series match")
        if diff["timing"]:
            lines.append(
                f"timing (vs median/MAD over {diff['history_runs']} "
                f"baseline runs):"
            )
            for row in diff["timing"]:
                note = (
                    f" score={_fmt(row['score'])}"
                    if row["score"] is not None else ""
                )
                ratio = (
                    f" ({_fmt(row['ratio'])}x)"
                    if row["ratio"] is not None else ""
                )
                lines.append(
                    f"  {row['name']}: {_fmt(row['a'])} -> "
                    f"{_fmt(row['b'])}{ratio}{note}"
                )
        if diff["stages"]:
            lines.append("stages (wall s):")
            for row in diff["stages"]:
                wall_a = _fmt(row["a"]) if row["a"] is not None else "-"
                wall_b = _fmt(row["b"]) if row["b"] is not None else "-"
                ratio = (
                    f" ({_fmt(row['ratio'])}x)"
                    if row["ratio"] is not None else ""
                )
                note = (
                    f" score={_fmt(row['score'])}"
                    if row["score"] is not None else ""
                )
                lines.append(f"  {row['name']}: {wall_a} -> {wall_b}{ratio}{note}")
        return "\n".join(lines)
