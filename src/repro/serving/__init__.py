"""The asyncio market serving tier and its load generator.

:class:`~repro.serving.tier.ServingTier` promotes the in-process
market fleet to real socket listeners (one per market) speaking the
:mod:`repro.net.transport` frame protocol;
:class:`~repro.serving.loadgen.LoadGenerator` hammers a running tier
with simulated end-user traffic and reports latency quantiles and
throughput.
"""

from repro.serving.loadgen import (
    DEFAULT_TRAFFIC_MIX,
    LoadGenerator,
    LoadReport,
    TrafficMix,
)
from repro.serving.tier import ServingTier

__all__ = [
    "ServingTier",
    "LoadGenerator",
    "LoadReport",
    "TrafficMix",
    "DEFAULT_TRAFFIC_MIX",
]
