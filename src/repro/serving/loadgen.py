"""Load generation against a running :class:`~repro.serving.ServingTier`.

The paper's markets served real end users while the crawlers worked;
this module supplies that background traffic and measures what the
tier can sustain.  A :class:`LoadGenerator` spawns ``users`` simulated
clients, each holding one socket connection to its (round-robin
assigned) market and issuing a deterministic stream of requests drawn
from a :class:`TrafficMix` — the search/detail/download blend end
users actually produce, as opposed to the crawler's exhaustive sweeps.

Measurement is two-layered on purpose:

* every request's wall latency lands in a
  ``loadgen_request_wall_seconds`` histogram (labels ``market`` and
  ``kind``) when a metrics registry is attached, which is what the CI
  SLO gate quantile-checks;
* the exact latencies are also kept in memory so the
  :class:`LoadReport` can report precise (nearest-rank) p50/p99
  rather than bucket upper bounds.

Determinism: request choice is driven by ``stable_hash64`` rolls over
``(seed, user, ordinal)``, so two runs against the same world issue
the same request streams.  Latency and throughput numbers are of
course wall-clock facts and vary run to run — that is the point.

Google Play sheds downloads by quota (429); the generator counts those
as *shed*, not errors — the tier answered correctly, the quota is the
answer.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.net.http import Request
from repro.obs.metrics import DEFAULT_WALL_BUCKETS, MetricsRegistry
from repro.util.rng import stable_hash64

__all__ = [
    "TrafficMix",
    "DEFAULT_TRAFFIC_MIX",
    "LoadGenerator",
    "LoadReport",
    "LOADGEN_HIST_METRIC",
]

#: Histogram metric the generator records request wall latency into.
LOADGEN_HIST_METRIC = "loadgen_request_wall_seconds"

#: The request kinds a mix weights, in canonical order.
KINDS = ("search", "detail", "download")


@dataclass(frozen=True)
class TrafficMix:
    """Relative weights of the end-user request kinds.

    The default 5:3:2 models browse-heavy traffic: half the requests
    are searches, a third are detail-page views, a fifth are APK
    downloads.  Weights are relative — ``TrafficMix(50, 30, 20)`` is
    the same mix.
    """

    search: float = 5.0
    detail: float = 3.0
    download: float = 2.0

    def __post_init__(self) -> None:
        for kind in KINDS:
            if getattr(self, kind) < 0:
                raise ValueError(f"mix weight {kind} must be non-negative")
        if self.total <= 0:
            raise ValueError("traffic mix must have positive total weight")

    @property
    def total(self) -> float:
        return self.search + self.detail + self.download

    @classmethod
    def parse(cls, spec: str) -> "TrafficMix":
        """Parse ``"search=5,detail=3,download=2"`` (kinds may be
        omitted; omitted kinds weigh 0)."""
        weights = {kind: 0.0 for kind in KINDS}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in weights:
                raise ValueError(f"bad traffic-mix component: {part!r}")
            try:
                weights[key] = float(value)
            except ValueError:
                raise ValueError(f"bad traffic-mix weight: {part!r}") from None
        return cls(**weights)

    def pick(self, roll: float) -> str:
        """Map a roll in ``[0, 1)`` to a kind by cumulative weight."""
        point = roll * self.total
        if point < self.search:
            return "search"
        if point < self.search + self.detail:
            return "detail"
        return "download"

    def describe(self) -> str:
        return ",".join(f"{kind}={getattr(self, kind):g}" for kind in KINDS)


DEFAULT_TRAFFIC_MIX = TrafficMix()


@dataclass
class LoadReport:
    """One load run's outcome, ready for ``BenchResults.record``."""

    users: int
    requests_per_user: int
    mix: str
    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_status: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "users": self.users,
            "requests_per_user": self.requests_per_user,
            "mix": self.mix,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "by_kind": dict(self.by_kind),
            "by_status": {str(k): v for k, v in sorted(self.by_status.items())},
        }


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LoadGenerator:
    """Hammers a running serving tier with end-user traffic."""

    def __init__(
        self,
        tier,
        servers: Mapping[str, object],
        users: int = 8,
        requests_per_user: int = 25,
        mix: TrafficMix = DEFAULT_TRAFFIC_MIX,
        seed: int = 0,
        day: float = 0.0,
        catalog_size: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ):
        """``servers`` supplies each market's catalog (targets are
        sampled from listings live at ``day``); the tier supplies the
        sockets.  Each user owns one pooled async transport — i.e. one
        connection, since a user's requests are sequential."""
        if users < 1:
            raise ValueError(f"users must be positive, got {users}")
        if requests_per_user < 1:
            raise ValueError(
                f"requests_per_user must be positive, got {requests_per_user}"
            )
        self._tier = tier
        self._mix = mix
        self._users = users
        self._requests_per_user = requests_per_user
        self._seed = seed
        self._day = day
        self._registry = registry
        self._hists: Dict[Tuple[str, str], object] = {}
        # (market, [(package, app_name), ...]) for every market with a
        # non-empty live catalog; dark or empty markets take no traffic.
        self._catalogs: Dict[str, List[Tuple[str, str]]] = {}
        for market_id, server in servers.items():
            catalog = []
            for listing in server.store.iter_live(day):
                catalog.append((listing.package, listing.app_name))
                if len(catalog) >= catalog_size:
                    break
            if catalog:
                self._catalogs[market_id] = catalog
        if not self._catalogs:
            raise ValueError("no market has a live catalog to generate load for")
        self._markets = list(self._catalogs)

    # -- request stream ----------------------------------------------------

    def _plan_request(self, user: int, ordinal: int, market_id: str) -> Tuple[str, Request]:
        roll = stable_hash64("loadgen-kind", self._seed, user, ordinal) % 10_000
        kind = self._mix.pick(roll / 10_000.0)
        catalog = self._catalogs[market_id]
        pick = stable_hash64("loadgen-target", self._seed, user, ordinal)
        package, app_name = catalog[pick % len(catalog)]
        headers = {"x-sim-time": repr(self._day)}
        if kind == "search":
            return kind, Request("/search", {"q": app_name}, headers)
        if kind == "detail":
            return kind, Request("/app", {"package": package}, headers)
        return kind, Request("/download", {"package": package}, headers)

    def _observe(self, market_id: str, kind: str, wall: float) -> None:
        if self._registry is None:
            return
        hist = self._hists.get((market_id, kind))
        if hist is None:
            hist = self._hists[(market_id, kind)] = self._registry.histogram(
                LOADGEN_HIST_METRIC,
                buckets=DEFAULT_WALL_BUCKETS,
                market=market_id,
                kind=kind,
            )
        hist.observe(wall)

    async def _user(self, user: int, report: LoadReport, latencies: List[float]) -> None:
        market_id = self._markets[user % len(self._markets)]
        transport = self._tier.async_transport(market_id)
        try:
            for ordinal in range(self._requests_per_user):
                kind, request = self._plan_request(user, ordinal, market_id)
                start = time.perf_counter()
                response = await transport.send(request)
                wall = time.perf_counter() - start
                latencies.append(wall)
                self._observe(market_id, kind, wall)
                report.requests += 1
                report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
                report.by_status[response.status] = (
                    report.by_status.get(response.status, 0) + 1
                )
                if response.ok:
                    report.ok += 1
                elif response.status == 429:
                    report.shed += 1  # quota shedding is a correct answer
                else:
                    report.errors += 1
        finally:
            await transport.aclose()

    async def _run(self) -> LoadReport:
        report = LoadReport(
            users=self._users,
            requests_per_user=self._requests_per_user,
            mix=self._mix.describe(),
        )
        latencies: List[float] = []
        started = time.perf_counter()
        await asyncio.gather(
            *(self._user(user, report, latencies) for user in range(self._users))
        )
        report.wall_seconds = time.perf_counter() - started
        if report.wall_seconds > 0:
            report.rps = report.requests / report.wall_seconds
        latencies.sort()
        report.p50_ms = _quantile(latencies, 0.50) * 1000.0
        report.p99_ms = _quantile(latencies, 0.99) * 1000.0
        return report

    def run(self) -> LoadReport:
        """Run the full load profile to completion (blocking)."""
        return asyncio.run(self._run())
