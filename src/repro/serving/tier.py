"""The asyncio serving tier: one socket listener per market.

The paper's 17 markets were real web services; this module is the
closest the simulation gets.  A :class:`ServingTier` runs a private
asyncio event loop on a background thread and binds one TCP listener
(127.0.0.1, ephemeral port) per :class:`~repro.markets.server.MarketServer`.
Connections speak the :mod:`repro.net.transport` frame protocol: a
length-prefixed RW01 request map in, a length-prefixed RW01 response
map out, any number of exchanges per connection.

Determinism is preserved by construction:

* ``server.handle`` is synchronous and every frame is dispatched on
  the single loop thread, so one market's request ordinals — and
  therefore its fault injection, quota consumption, and hostility
  screening — form one serialized stream exactly as in-process calls
  do.  (Lanes still serialize their *own* requests; the loop serializes
  across connections.)
* Latency injection is owned by the tier (``await asyncio.sleep``
  *before* dispatch), never by the wrapped server: a blocking
  ``time.sleep`` inside ``handle`` would stall the whole loop, so
  servers with their own ``latency_s`` are rejected at construction.
  Tier latency models network service time for benchmarks — concurrent
  connections overlap their waits, which is exactly the effect the
  async client exploits.

The tier runs in the same process as the crawler, so checkpoint
journaling keeps working: the coordinator snapshots server state
through its direct object references, while request traffic flows over
the sockets.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.net.http import Response
from repro.net.transport import (
    AsyncSocketTransport,
    SocketTransport,
    decode_request,
    encode_response,
    pack_frame,
    read_frame,
)

__all__ = ["ServingTier"]

#: Wall seconds to wait for the tier's loop/listeners to come up or down.
_STARTUP_TIMEOUT = 10.0


class ServingTier:
    """Serves a fleet of market servers over local TCP sockets."""

    def __init__(
        self,
        servers: Mapping[str, object],
        host: str = "127.0.0.1",
        latency_s: float = 0.0,
        timeout: float = 30.0,
    ):
        """``latency_s`` is injected per request *asynchronously* (the
        loop keeps serving other connections during the wait);
        ``timeout`` is the default wall budget handed to transports
        built by :meth:`transport` / :meth:`async_transport`."""
        if latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {latency_s}")
        for market_id, server in servers.items():
            if getattr(server, "_latency_s", 0.0):
                raise ValueError(
                    f"server {market_id!r} has blocking latency_s set; "
                    "pass latency to the ServingTier instead (the tier "
                    "injects it without stalling the event loop)"
                )
        self._servers = dict(servers)
        self._host = host
        self._latency_s = latency_s
        self._timeout = timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listeners: Dict[str, asyncio.base_events.Server] = {}
        self._ports: Dict[str, int] = {}
        self.frames_served: Dict[str, int] = {m: 0 for m in self._servers}
        self.connections_accepted: Dict[str, int] = {m: 0 for m in self._servers}

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._loop is not None

    def start(self) -> "ServingTier":
        """Bind every market's listener; idempotent."""
        if self.running:
            return self
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            started.set()
            loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="serving-tier", daemon=True
        )
        self._thread.start()
        started.wait(_STARTUP_TIMEOUT)
        self._loop = loop
        future = asyncio.run_coroutine_threadsafe(self._bind_all(), loop)
        try:
            self._ports = future.result(_STARTUP_TIMEOUT)
        except Exception:
            self.stop()
            raise
        return self

    async def _bind_all(self) -> Dict[str, int]:
        ports: Dict[str, int] = {}
        for market_id in self._servers:
            listener = await asyncio.start_server(
                self._connection_handler(market_id), self._host, 0
            )
            self._listeners[market_id] = listener
            ports[market_id] = listener.sockets[0].getsockname()[1]
        return ports

    def stop(self) -> None:
        """Close every listener and stop the loop; idempotent."""
        loop, self._loop = self._loop, None
        if loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._unbind_all(), loop)
        try:
            future.result(_STARTUP_TIMEOUT)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(_STARTUP_TIMEOUT)
                self._thread = None
            loop.close()
            self._listeners = {}
            self._ports = {}

    async def _unbind_all(self) -> None:
        for listener in self._listeners.values():
            listener.close()
        for listener in self._listeners.values():
            await listener.wait_closed()

    def __enter__(self) -> "ServingTier":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- connections -------------------------------------------------------

    def _connection_handler(self, market_id: str):
        server = self._servers[market_id]

        async def handle_connection(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            self.connections_accepted[market_id] += 1
            try:
                while True:
                    try:
                        payload = await read_frame(reader)
                    except (asyncio.IncompleteReadError, ConnectionError):
                        return  # client went away between frames
                    try:
                        request = decode_request(payload)
                    except Exception:
                        # A garbled frame poisons the stream; answer a
                        # 500 so the client's retry path reconnects,
                        # then drop the connection.
                        writer.write(pack_frame(encode_response(
                            Response(status=500)
                        )))
                        await writer.drain()
                        return
                    if self._latency_s:
                        await asyncio.sleep(self._latency_s)
                    response = server.handle(request)
                    self.frames_served[market_id] += 1
                    writer.write(pack_frame(encode_response(response)))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass  # mid-write drop: nothing left to tell the peer
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):  # pragma: no cover
                    pass

        return handle_connection

    # -- addresses & transports --------------------------------------------

    @property
    def market_ids(self) -> Iterator[str]:
        return iter(self._servers)

    def address(self, market_id: str) -> Tuple[str, int]:
        """The ``(host, port)`` one market's listener is bound to."""
        if not self.running:
            raise RuntimeError("serving tier is not running")
        return (self._host, self._ports[market_id])

    def transport(self, market_id: str) -> SocketTransport:
        """A fresh blocking transport to one market (thread engine)."""
        host, port = self.address(market_id)
        return SocketTransport(host, port, timeout=self._timeout)

    def transports(self) -> Dict[str, SocketTransport]:
        """Fresh blocking transports for every market, in lane order."""
        return {m: self.transport(m) for m in self._servers}

    def async_transport(self, market_id: str) -> AsyncSocketTransport:
        """A fresh pooled async transport to one market.

        The transport binds sockets lazily on whatever event loop
        awaits it — the async crawl engine's loop, not the tier's.
        """
        host, port = self.address(market_id)
        return AsyncSocketTransport(host, port, timeout=self._timeout)

    def async_transports(self) -> Dict[str, AsyncSocketTransport]:
        return {m: self.async_transport(m) for m in self._servers}

    @property
    def total_frames_served(self) -> int:
        return sum(self.frames_served.values())
