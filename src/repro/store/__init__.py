"""Out-of-core corpus storage.

``repro.store`` is the disk-backed record layer that lets worlds,
snapshots, and analysis corpora scale past RAM: a columnar
:class:`~repro.store.columnar.ColumnStore` (one SQLite segment table
per record family), a content-addressed, mmap-read
:class:`~repro.store.blobs.BlobVault` for APK documents, and the
:class:`~repro.store.corpus.CorpusStore` facade that a
:class:`~repro.core.config.StudyConfig` resolves to.

The contract (see DESIGN.md, "Out-of-core corpus"): every public
``content_digest()`` — world, snapshot, report — is **backend
invariant**.  The memory backend is today's in-RAM objects; the sqlite
backend spills the same records to disk once they cross the configured
spill threshold and re-serves them through batched streaming cursors.
Digest equality between the two backends is the repo's equality oracle
for the whole refactor.
"""

from repro.store.blobs import BlobVault, LazyApk
from repro.store.columnar import ColumnStore, Family, StoreError
from repro.store.corpus import CorpusStore, SpilledAppList

__all__ = [
    "BlobVault",
    "ColumnStore",
    "CorpusStore",
    "Family",
    "LazyApk",
    "SpilledAppList",
    "StoreError",
]
