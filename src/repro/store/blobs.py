"""Content-addressed APK blob vault with lazy proxies.

The vault stores parsed-APK documents on disk keyed by MD5 (the same
content address the crawl journal's :class:`~repro.crawler.journal.ApkStore`
uses), sharded two hex characters deep, and serves reads through
``mmap`` so repeated loads of a hot shard stay in the page cache rather
than duplicating bytes per reader.  A bounded LRU of decoded
:class:`~repro.apk.archive.ParsedApk` objects sits on top; the bound is
what keeps the resident set flat when a streaming cursor walks millions
of records.

:class:`LazyApk` is the out-of-core stand-in for a ``ParsedApk`` held
by a crawl record or app unit.  It carries only the identity fields the
hot paths read without parsing (``md5``, ``signer_fingerprint``, a
``version_code_hint`` captured at spill time) and resolves every other
attribute through the vault on demand — never caching the parsed object
on itself, so a retained record stays a few pointers wide.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

__all__ = ["BlobVault", "LazyApk", "DEFAULT_VAULT_CACHE"]

#: Decoded-APK LRU size.  ~200 ParsedApks is a few MiB — enough to keep
#: one analysis batch hot without letting the cache become the corpus.
DEFAULT_VAULT_CACHE = 256


class BlobVault:
    """Disk store of parsed-APK docs: ``root/<md5[:2]>/<md5>.json``."""

    def __init__(self, root: Union[str, Path], cache_size: int = DEFAULT_VAULT_CACHE):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._cache: "OrderedDict[str, object]" = OrderedDict()
        self._cache_size = max(1, cache_size)
        self._lock = threading.Lock()

    def _path(self, md5: str) -> Path:
        safe = "".join(c for c in md5 if c.isalnum())
        return self.root / safe[:2] / f"{safe}.json"

    def put(self, apk) -> str:
        """Store one parsed APK; idempotent; returns its MD5."""
        from repro.crawler.dataset import _apk_to_doc

        md5 = apk.md5
        path = self._path(md5)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.{id(apk):x}.tmp")
            tmp.write_text(
                json.dumps(_apk_to_doc(apk), separators=(",", ":")),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return md5

    def load(self, md5: str):
        """Decode one APK by digest, through the bounded LRU."""
        from repro.crawler.dataset import _apk_from_doc

        with self._lock:
            apk = self._cache.get(md5)
            if apk is not None:
                self._cache.move_to_end(md5)
                return apk
        path = self._path(md5)
        with open(path, "rb") as handle:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
                doc = json.loads(view[:])
        apk = _apk_from_doc(doc)
        with self._lock:
            self._cache[md5] = apk
            self._cache.move_to_end(md5)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return apk

    def __contains__(self, md5: str) -> bool:
        with self._lock:
            if md5 in self._cache:
                return True
        return self._path(md5).exists()

    def lazy(self, apk) -> "LazyApk":
        """Store ``apk`` and return its lazy stand-in."""
        self.put(apk)
        return LazyApk(
            self,
            apk.md5,
            apk.signer_fingerprint,
            apk.manifest.version_code,
        )


class LazyApk:
    """A ``ParsedApk`` proxy that re-reads from the vault on demand.

    Identity fields live on the proxy (``md5``, ``signer_fingerprint``,
    ``version_code_hint``); everything else — manifest, code packages,
    META-INF, merged features — delegates to the vault's bounded LRU.
    The proxy never pins the decoded object, so holding a million
    proxies costs a million small structs, not a million parsed APKs.
    """

    __slots__ = ("_vault", "md5", "signer_fingerprint", "version_code_hint")

    def __init__(
        self,
        vault: BlobVault,
        md5: str,
        signer_fingerprint: str,
        version_code_hint: Optional[int] = None,
    ):
        self._vault = vault
        self.md5 = md5
        self.signer_fingerprint = signer_fingerprint
        self.version_code_hint = version_code_hint

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._vault.load(self.md5), name)

    def __repr__(self) -> str:
        return f"LazyApk(md5={self.md5!r})"
