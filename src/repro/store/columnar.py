"""SQLite-backed columnar segment tables.

A :class:`ColumnStore` is one SQLite database holding one segment table
per **record family** (apps, per-campaign crawl records, analysis
rows).  Each family declares its key columns — the fields queries
filter or order on — and keeps the rest of the record in a single
opaque payload column, so the table stays narrow and scans stay
sequential (the columnar part that matters for an append-mostly corpus:
hot columns are real columns, cold state is one blob).

Design points:

* **Insertion order is the contract.**  Every family row carries the
  implicit SQLite ``rowid``; :meth:`Family.scan` pages through it in
  batches, so a cursor yields records in exactly the order ``append``
  saw them — the same order the in-memory backend iterates.  This is
  what keeps content digests backend-invariant.
* **Batched, buffered writes.**  Appends accumulate in a small buffer
  and land with one ``executemany`` per batch; any read flushes first.
* **Pagination, not long-lived cursors.**  ``scan`` re-queries with
  ``rowid > last`` per batch, so interleaved updates (the crawl
  attaching APKs, catalog evolution writing back placements) never run
  on top of a half-consumed cursor.
* **Thread-safe.**  One connection, one lock: crawl lanes append from
  worker threads while the coordinator reads.
* **mmap-friendly.**  The database is opened with a generous
  ``mmap_size`` so reads are served straight from the page cache.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["ColumnStore", "Family", "StoreError", "DEFAULT_BATCH_SIZE"]

DEFAULT_BATCH_SIZE = 512

#: How much of the database file SQLite may serve via mmap (bytes).
_MMAP_BYTES = 256 * 1024 * 1024


class StoreError(Exception):
    """Raised for invalid store usage or a corrupt segment database."""


def _check_identifier(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise StoreError(f"invalid identifier {name!r}")
    return name


class Family:
    """One record family: a segment table plus its write buffer."""

    def __init__(
        self,
        store: "ColumnStore",
        name: str,
        key_columns: Sequence[Tuple[str, str]],
        unique: Optional[Sequence[str]] = None,
        indexes: Sequence[Sequence[str]] = (),
    ):
        self._store = store
        self.name = _check_identifier(name)
        self.table = f"fam_{name}"
        self._columns = [(_check_identifier(c), t) for c, t in key_columns]
        self._column_names = [c for c, _ in self._columns] + ["payload"]
        self._pending: List[Tuple] = []
        cols = ", ".join(f"{c} {t}" for c, t in self._columns)
        with store._lock:
            store._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {self.table} ({cols}, payload BLOB)"
            )
            if unique:
                store._conn.execute(
                    f"CREATE UNIQUE INDEX IF NOT EXISTS idx_{name}_key "
                    f"ON {self.table} ({', '.join(unique)})"
                )
            for i, index in enumerate(indexes):
                store._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS idx_{name}_{i} "
                    f"ON {self.table} ({', '.join(index)})"
                )
            store._conn.commit()
        placeholders = ", ".join("?" for _ in self._column_names)
        self._insert_sql = (
            f"INSERT INTO {self.table} ({', '.join(self._column_names)}) "
            f"VALUES ({placeholders})"
        )

    # -- writes ------------------------------------------------------------

    def append(self, *values: object) -> None:
        """Buffer one row (key column values in order, then payload)."""
        if len(values) != len(self._column_names):
            raise StoreError(
                f"{self.name}: expected {len(self._column_names)} values, "
                f"got {len(values)}"
            )
        with self._store._lock:
            self._pending.append(values)
            if len(self._pending) >= self._store.batch_size:
                self._flush_locked()

    def update(self, assignments: Dict[str, object], where: Dict[str, object]) -> int:
        """Update matching rows; returns the number of rows changed."""
        self.flush()
        sets = ", ".join(f"{_check_identifier(c)} = ?" for c in assignments)
        cond = " AND ".join(f"{_check_identifier(c)} = ?" for c in where)
        with self._store._lock:
            cur = self._store._conn.execute(
                f"UPDATE {self.table} SET {sets} WHERE {cond}",
                tuple(assignments.values()) + tuple(where.values()),
            )
            self._store._conn.commit()
            return cur.rowcount

    def flush(self) -> None:
        with self._store._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._pending:
            self._store._conn.executemany(self._insert_sql, self._pending)
            self._pending.clear()
            self._store._conn.commit()

    # -- reads -------------------------------------------------------------

    def get(self, **where: object) -> Optional[Tuple]:
        """The first matching row (key columns + payload), or None."""
        self.flush()
        cond = " AND ".join(f"{_check_identifier(c)} = ?" for c in where)
        sql = (
            f"SELECT {', '.join(self._column_names)} FROM {self.table} "
            f"WHERE {cond} LIMIT 1"
        )
        with self._store._lock:
            cur = self._store._conn.execute(sql, tuple(where.values()))
            return cur.fetchone()

    def count(self, **where: object) -> int:
        self.flush()
        sql = f"SELECT COUNT(*) FROM {self.table}"
        args: Tuple = ()
        if where:
            sql += " WHERE " + " AND ".join(
                f"{_check_identifier(c)} = ?" for c in where
            )
            args = tuple(where.values())
        with self._store._lock:
            return int(self._store._conn.execute(sql, args).fetchone()[0])

    def scan(
        self,
        batch_size: Optional[int] = None,
        order_by: Optional[Sequence[str]] = None,
        **where: object,
    ) -> Iterator[Tuple]:
        """Stream rows in batches.

        Rows come back in ``order_by`` order (default: insertion order),
        with ``rowid`` as the final tie-break so pagination is total.
        The cursor holds at most one batch in memory and re-queries
        between batches, so writers may interleave safely.
        """
        self.flush()
        batch = batch_size or self._store.batch_size
        order_cols = [_check_identifier(c) for c in (order_by or ())]
        select_cols = self._column_names + order_cols + ["rowid"]
        cond = [f"{_check_identifier(c)} = ?" for c in where]
        base_args = tuple(where.values())
        n_keys = len(self._column_names)
        # Pagination key: (order_by columns..., rowid) strictly greater
        # than the last row seen.
        last: Optional[Tuple] = None
        while True:
            clauses = list(cond)
            args: Tuple = base_args
            if last is not None:
                cols = "(" + ", ".join(order_cols + ["rowid"]) + ")"
                marks = "(" + ", ".join("?" for _ in range(len(order_cols) + 1)) + ")"
                clauses.append(f"{cols} > {marks}")
                args = base_args + last
            sql = f"SELECT {', '.join(select_cols)} FROM {self.table}"
            if clauses:
                sql += " WHERE " + " AND ".join(clauses)
            sql += " ORDER BY " + ", ".join(order_cols + ["rowid"])
            sql += " LIMIT ?"
            with self._store._lock:
                rows = self._store._conn.execute(sql, args + (batch,)).fetchall()
            for row in rows:
                yield row[:n_keys]
            if len(rows) < batch:
                return
            last = tuple(rows[-1][n_keys:])


class ColumnStore:
    """One SQLite database of record-family segment tables."""

    def __init__(self, path: os.PathLike, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise StoreError(f"batch_size must be positive, got {batch_size}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA mmap_size={_MMAP_BYTES}")
        self._families: Dict[str, Family] = {}

    def family(
        self,
        name: str,
        key_columns: Sequence[Tuple[str, str]],
        unique: Optional[Sequence[str]] = None,
        indexes: Sequence[Sequence[str]] = (),
    ) -> Family:
        """Open (creating if needed) one record family."""
        fam = self._families.get(name)
        if fam is None:
            fam = Family(self, name, key_columns, unique=unique, indexes=indexes)
            self._families[name] = fam
        return fam

    def family_names(self) -> List[str]:
        """Every family present in the database (including other runs')."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name LIKE 'fam_%'"
            ).fetchall()
        return sorted(name[len("fam_"):] for (name,) in rows)

    def flush(self) -> None:
        with self._lock:
            for fam in self._families.values():
                fam._flush_locked()

    def close(self) -> None:
        with self._lock:
            for fam in self._families.values():
                fam._flush_locked()
            self._conn.commit()
            self._conn.close()

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
