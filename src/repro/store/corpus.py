"""The corpus store facade and the spilled world-app list.

:class:`CorpusStore` bundles the two disk layers one study run needs —
a :class:`~repro.store.columnar.ColumnStore` of record-family segment
tables and a :class:`~repro.store.blobs.BlobVault` of parsed-APK
documents — under one root directory, and resolves itself from a
:class:`~repro.core.config.StudyConfig` (``store_backend="sqlite"``).

:class:`SpilledAppList` is the disk-backed drop-in for ``World.apps``:
a read-mostly sequence of :class:`~repro.ecosystem.apps.AppBlueprint`
rows keyed by ``app_id`` with a ``package`` column (indexed, so
``find_by_package`` is a lookup instead of a corpus scan).  Blueprints
are pickled per row with two store-specific twists:

* **Developers keep identity.**  A :class:`Developer` is pickled as a
  persistent id and resolved against the world's developer list on
  load, so ``app.developer is world.developers[i]`` still holds and a
  developer is stored once, not once per app.
* **Memos are stripped.**  ``OwnCode`` memoizes its built
  :class:`CodePackage`; the memo is dropped before pickling so payload
  bytes stay deterministic and small.

Mutation contract: an object read from the spilled list is a fresh
copy; callers that mutate a blueprint (catalog evolution bumping
``placement.version_index``) must call :meth:`SpilledAppList.write_back`
to persist it — the same call is a no-op-shaped append on the memory
backend (plain list), where mutation is already in place.
"""

from __future__ import annotations

import io
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.ecosystem.developers import Developer
from repro.store.blobs import BlobVault
from repro.store.columnar import (
    DEFAULT_BATCH_SIZE,
    ColumnStore,
    Family,
    StoreError,
)

__all__ = ["CorpusStore", "SpilledAppList", "DEFAULT_SPILL_THRESHOLD"]

#: Below this many records a family stays in memory (bit-identical to
#: the memory backend); above it, rows spill to the segment tables.
DEFAULT_SPILL_THRESHOLD = 5000

#: Decoded-blueprint LRU for random access (market stores resolve
#: ``world.app(listing.app_id)`` on every APK build).
DEFAULT_APP_CACHE = 512


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name) or "_"


class CorpusStore:
    """One run's disk corpus: segment tables + APK vault under a root."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    ):
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-corpus-")
            root = self._tmp.name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.batch_size = batch_size
        self.spill_threshold = spill_threshold
        self.columns = ColumnStore(self.root / "corpus.db", batch_size=batch_size)
        self.vault = BlobVault(self.root / "apks")

    @classmethod
    def from_config(cls, config) -> Optional["CorpusStore"]:
        """The store a config asks for — None for the memory backend."""
        if getattr(config, "store_backend", "memory") != "sqlite":
            return None
        root = getattr(config, "store_dir", None)
        if root is None and getattr(config, "checkpoint_dir", None):
            root = Path(config.checkpoint_dir) / "store"
        return cls(
            root,
            batch_size=getattr(config, "store_batch_size", DEFAULT_BATCH_SIZE),
            spill_threshold=getattr(
                config, "store_spill_threshold", DEFAULT_SPILL_THRESHOLD
            ),
        )

    # -- families ----------------------------------------------------------

    def apps_family(self) -> Family:
        return self.columns.family(
            "apps",
            [("app_id", "INTEGER"), ("package", "TEXT")],
            unique=["app_id"],
            indexes=[["package"]],
        )

    def crawl_family(self, label: str) -> Family:
        """The record family of one crawl campaign."""
        return self.columns.family(
            f"crawl_{_sanitize(label)}",
            [
                ("market_id", "TEXT"),
                ("package", "TEXT"),
                ("md5", "TEXT"),
                ("signer", "TEXT"),
                ("vc_hint", "INTEGER"),
                ("apk_source", "TEXT"),
            ],
            unique=["market_id", "package"],
            indexes=[["market_id"], ["package"]],
        )

    def close(self) -> None:
        self.columns.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


class _AppPickler(pickle.Pickler):
    """Pickles blueprints with developers as persistent references."""

    def persistent_id(self, obj):
        if isinstance(obj, Developer):
            return ("dev", obj.dev_id)
        return None


class _AppUnpickler(pickle.Unpickler):
    def __init__(self, data: bytes, developers):
        super().__init__(io.BytesIO(data))
        self._developers = developers

    def persistent_load(self, pid):
        kind, dev_id = pid
        if kind != "dev":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._developers[dev_id]


class SpilledAppList(Sequence):
    """Disk-backed ``World.apps``: blueprints by app_id, package-indexed."""

    def __init__(
        self,
        family: Family,
        developers: List[Developer],
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache_size: int = DEFAULT_APP_CACHE,
    ):
        self._family = family
        self._developers = {dev.dev_id: dev for dev in developers}
        self._batch = batch_size
        self._cache: "OrderedDict[int, object]" = OrderedDict()
        self._cache_size = max(1, cache_size)
        self._lock = threading.Lock()
        self._len = family.count()

    @classmethod
    def spill(
        cls,
        store: CorpusStore,
        apps: Sequence,
        developers: List[Developer],
    ) -> "SpilledAppList":
        """Write a fully-materialized app list into the store."""
        family = store.apps_family()
        if family.count():
            raise StoreError("apps family already populated")
        for position, app in enumerate(apps):
            if app.app_id != position:
                raise StoreError(
                    f"app list out of order: position {position} holds "
                    f"app_id {app.app_id}"
                )
            family.append(app.app_id, app.package, cls._dumps(app))
        family.flush()
        return cls(family, developers, batch_size=store.batch_size)

    # -- codec -------------------------------------------------------------

    @staticmethod
    def _dumps(app) -> bytes:
        # Drop the frozen OwnCode's CodePackage memo: it is derived
        # state, rebuilt on demand, and would bloat every payload.
        app.own_code.__dict__.pop("_code_package", None)
        buffer = io.BytesIO()
        _AppPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(app)
        return buffer.getvalue()

    def _loads(self, payload: bytes):
        return _AppUnpickler(payload, self._developers).load()

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._len))]
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError(f"app index {index} out of range")
        with self._lock:
            app = self._cache.get(index)
            if app is not None:
                self._cache.move_to_end(index)
                return app
        row = self._family.get(app_id=index)
        if row is None:
            raise StoreError(f"app {index} missing from store")
        app = self._loads(row[-1])
        with self._lock:
            self._cache[index] = app
            self._cache.move_to_end(index)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return app

    def __iter__(self) -> Iterator:
        return self.iter()

    def iter(self, batch_size: Optional[int] = None) -> Iterator:
        """Stream blueprints in app_id order, one batch resident."""
        for row in self._family.scan(batch_size=batch_size or self._batch):
            app_id = row[0]
            with self._lock:
                cached = self._cache.get(app_id)
            # Prefer the cached object: a caller that mutated it (and
            # has not written back yet) sees its own mutation, matching
            # the memory backend's aliasing.
            yield cached if cached is not None else self._loads(row[-1])

    # -- queries and write-back --------------------------------------------

    def find_by_package(self, package: str) -> List:
        return [
            self._resolve(row)
            for row in self._family.scan(batch_size=self._batch, package=package)
        ]

    def _resolve(self, row):
        app_id = row[0]
        with self._lock:
            cached = self._cache.get(app_id)
        return cached if cached is not None else self._loads(row[-1])

    def write_back(self, app) -> None:
        """Persist a mutated blueprint (placement evolution, etc.)."""
        changed = self._family.update(
            {"payload": self._dumps(app)}, {"app_id": app.app_id}
        )
        if changed != 1:
            raise StoreError(f"write_back of app {app.app_id} touched {changed} rows")
        with self._lock:
            self._cache[app.app_id] = app
            self._cache.move_to_end(app.app_id)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
