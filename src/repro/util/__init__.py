"""Shared utilities: deterministic RNG streams, statistics, simulated time."""

from repro.util.rng import RngFactory
from repro.util.simtime import SimClock, days, months
from repro.util.stats import cdf_points, percentile_shares, top_share

__all__ = [
    "RngFactory",
    "SimClock",
    "days",
    "months",
    "cdf_points",
    "percentile_shares",
    "top_share",
]
