"""Deterministic random-number streams.

Every stochastic component of the pipeline draws from its own named
child stream so that adding randomness to one component never perturbs
another.  A ``RngFactory`` is constructed once per study from the study
seed; components ask for streams by name.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "stable_hash32", "stable_hash64"]


def stable_hash32(*parts: object) -> int:
    """Return a stable 32-bit hash of the given parts.

    Unlike the builtin ``hash``, this is stable across interpreter runs
    (``PYTHONHASHSEED`` does not affect it), which the pipeline relies on
    for reproducible feature hashes and signatures.
    """
    return stable_hash64(*parts) & 0xFFFFFFFF


def stable_hash64(*parts: object) -> int:
    """Return a stable 64-bit hash of the given parts."""
    key = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngFactory:
    """Factory of independent, reproducible ``numpy.random.Generator`` streams.

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("apps")
    >>> b = rngs.stream("apps")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, *name: object) -> np.random.Generator:
        """Return a fresh generator for the named component.

        Calling ``stream`` twice with the same name yields generators in
        identical states; distinct names yield statistically independent
        streams.
        """
        child = stable_hash64(self._seed, *name)
        return np.random.default_rng(child)

    def child(self, *name: object) -> "RngFactory":
        """Return a derived factory namespaced under ``name``."""
        return RngFactory(stable_hash64(self._seed, "child", *name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
