"""Simulated time.

The pipeline never reads the wall clock.  Time is an integer number of
days since the epoch 2010-01-01 (the study universe starts when Google
services were restricted in China).  ``SimClock`` is a tiny mutable
clock shared by markets and crawlers so that the second crawl of the
paper (8 months after the first) is a plain ``advance``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

__all__ = [
    "EPOCH",
    "SimClock",
    "date_to_day",
    "day_to_date",
    "days",
    "months",
    "FIRST_CRAWL_DAY",
    "SECOND_CRAWL_DAY",
]

EPOCH = datetime.date(2010, 1, 1)


def date_to_day(date: datetime.date) -> int:
    """Convert a calendar date to simulated days-since-epoch."""
    return (date - EPOCH).days


def day_to_date(day: int) -> datetime.date:
    """Convert simulated days-since-epoch back to a calendar date."""
    return EPOCH + datetime.timedelta(days=day)


def days(n: float) -> float:
    """Readability helper: a duration of ``n`` days."""
    return float(n)


def months(n: float) -> float:
    """A duration of ``n`` average months (30.44 days each)."""
    return float(n) * 30.44


#: The paper's first crawl campaign started on 2017-08-15.
FIRST_CRAWL_DAY = date_to_day(datetime.date(2017, 8, 15))

#: The paper's second crawl campaign started on 2018-04-30.
SECOND_CRAWL_DAY = date_to_day(datetime.date(2018, 4, 30))


@dataclass
class SimClock:
    """A mutable simulated clock measured in days since :data:`EPOCH`."""

    now: float = field(default=float(FIRST_CRAWL_DAY))

    def advance(self, duration: float) -> float:
        """Move the clock forward and return the new time."""
        if duration < 0:
            raise ValueError(f"cannot advance by a negative duration: {duration}")
        self.now += duration
        return self.now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to an absolute time."""
        if when < self.now:
            raise ValueError(f"cannot move clock backwards: {when} < {self.now}")
        self.now = float(when)
        return self.now

    @property
    def today(self) -> datetime.date:
        """The current simulated calendar date."""
        return day_to_date(int(self.now))
