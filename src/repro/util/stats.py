"""Small statistics helpers used across analyses and experiments."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

import numpy as np

__all__ = [
    "cdf_points",
    "percentile_shares",
    "top_share",
    "normalize",
    "histogram_shares",
    "box_stats",
    "BoxStats",
    "spearman_rank_correlation",
    "mean_absolute_error",
    "l1_distance",
]


def cdf_points(values: Iterable[float], grid: Optional[Sequence[float]] = None):
    """Return ``(xs, cdf)`` arrays describing the empirical CDF of ``values``.

    If ``grid`` is given, the CDF is evaluated at those points; otherwise
    at the sorted unique values.
    """
    arr = np.asarray(sorted(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cdf_points requires at least one value")
    if grid is None:
        xs = np.unique(arr)
    else:
        xs = np.asarray(grid, dtype=float)
    counts = np.searchsorted(arr, xs, side="right")
    return xs, counts / arr.size


def top_share(values: Iterable[float], fraction: float) -> float:
    """Share of the total held by the top ``fraction`` of values.

    ``top_share(downloads, 0.01)`` answers the paper's "the top 1% of
    apps account for over 80% of total downloads".  At least one element
    is always counted as "top" so tiny corpora behave sensibly.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = np.asarray(sorted(values, reverse=True), dtype=float)
    if arr.size == 0:
        raise ValueError("top_share requires at least one value")
    total = float(arr.sum())
    if total <= 0:
        return 0.0
    k = max(1, int(round(arr.size * fraction)))
    # Clamp: summation order can push the ratio epsilon past 1.0.
    return min(1.0, float(arr[:k].sum()) / total)


def percentile_shares(values: Iterable[float], fractions: Sequence[float]) -> dict:
    """Map each fraction to its :func:`top_share`."""
    vals = list(values)
    return {f: top_share(vals, f) for f in fractions}


def normalize(counts: Sequence[float]) -> np.ndarray:
    """Normalize counts into shares; an all-zero vector stays all-zero."""
    arr = np.asarray(counts, dtype=float)
    total = arr.sum()
    if total == 0:
        return arr
    return arr / total


def histogram_shares(values: Iterable[float], edges: Sequence[float]) -> np.ndarray:
    """Histogram ``values`` into ``edges`` bins and return per-bin shares."""
    counts, _ = np.histogram(list(values), bins=np.asarray(edges, dtype=float))
    return normalize(counts)


class BoxStats:
    """Five-number summary used to render the paper's box plots."""

    __slots__ = ("minimum", "q1", "median", "q3", "maximum")

    def __init__(self, values: Iterable[float]):
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("BoxStats requires at least one value")
        self.minimum = float(arr.min())
        self.q1 = float(np.percentile(arr, 25))
        self.median = float(np.percentile(arr, 50))
        self.q3 = float(np.percentile(arr, 75))
        self.maximum = float(arr.max())

    def as_dict(self) -> dict:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return (
            f"BoxStats(min={self.minimum:.3g}, q1={self.q1:.3g}, "
            f"median={self.median:.3g}, q3={self.q3:.3g}, max={self.maximum:.3g})"
        )


def box_stats(values: Iterable[float]) -> BoxStats:
    """Convenience constructor for :class:`BoxStats`."""
    return BoxStats(values)


def spearman_rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman's rho between two paired samples.

    Used by the fidelity scorecard to ask "does the measured per-market
    ordering match the paper's?" without caring about absolute values.
    """
    xa, xb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if xa.shape != xb.shape:
        raise ValueError("samples must be paired")
    if xa.size < 2:
        raise ValueError("need at least two pairs")

    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values)
        rank = np.empty_like(order, dtype=float)
        rank[order] = np.arange(len(values), dtype=float)
        # average ties
        for value in np.unique(values):
            mask = values == value
            if mask.sum() > 1:
                rank[mask] = rank[mask].mean()
        return rank

    ra, rb = ranks(xa), ranks(xb)
    if ra.std() == 0 or rb.std() == 0:
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


def mean_absolute_error(a: Sequence[float], b: Sequence[float]) -> float:
    """Mean absolute difference between paired samples."""
    xa, xb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if xa.shape != xb.shape:
        raise ValueError("samples must be paired")
    if xa.size == 0:
        raise ValueError("need at least one pair")
    return float(np.abs(xa - xb).mean())


def l1_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Total variation-style L1 distance between two share vectors."""
    xa, xb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if xa.shape != xb.shape:
        raise ValueError("vectors must align")
    return float(np.abs(xa - xb).sum())
