"""Deterministic name generation for the synthetic ecosystem.

Generates plausible Android package names, app display names (a mix of
English and pinyin-flavored Chinese product names), and developer names.
All functions are pure given an RNG stream.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "package_name",
    "app_display_name",
    "developer_name",
    "cjk_display_name",
    "COMMON_APP_NAMES",
]

_TLDS = ["com", "cn", "net", "org", "io", "mobi"]

_COMPANY_WORDS = [
    "ant", "apex", "aurora", "banyan", "bamboo", "bit", "blue", "bright",
    "cloud", "crane", "dragon", "east", "ever", "fast", "feng", "fire",
    "fox", "fun", "golden", "grand", "great", "happy", "hero", "hill",
    "hong", "hua", "jade", "jing", "joy", "kai", "kirin", "lan", "leap",
    "ling", "lion", "long", "lotus", "lucky", "lumen", "magic", "mei",
    "ming", "moon", "nova", "orient", "panda", "peak", "pear", "phoenix",
    "pine", "pixel", "plum", "quick", "rain", "red", "river", "rong",
    "sea", "sharp", "shen", "silk", "silver", "sky", "smart", "snow",
    "song", "south", "spark", "star", "stone", "sun", "swift", "tao",
    "tian", "tiger", "true", "wan", "wave", "wei", "west", "wind", "wise",
    "xin", "yang", "yi", "yuan", "yun", "zen", "zhi", "zhong", "zoom",
]

_PRODUCT_WORDS = [
    "album", "assistant", "battle", "book", "browser", "butler", "cam",
    "camera", "cards", "chat", "chef", "city", "clash", "class", "clean",
    "clock", "coach", "coin", "craft", "dash", "deal", "diary", "dict",
    "diet", "draw", "drive", "farm", "fit", "flight", "food", "forum",
    "fund", "game", "go", "guard", "guide", "gym", "home", "hunt", "idle",
    "jump", "keyboard", "kitchen", "launcher", "learn", "legend", "life",
    "live", "lock", "mail", "mall", "manager", "map", "market", "master",
    "match", "mate", "memo", "mix", "music", "news", "note", "pal", "pay",
    "pet", "phone", "photo", "pilot", "play", "player", "pop", "puzzle",
    "quiz", "race", "radio", "reader", "recipe", "ride", "run", "saga",
    "scan", "shop", "show", "sing", "sketch", "sleep", "space", "sports",
    "stock", "story", "studio", "study", "style", "tales", "talk", "taxi",
    "ticket", "tool", "tower", "trade", "train", "travel", "tv", "video",
    "wallet", "weather", "word", "world", "yoga", "zone",
]

_NAME_SUFFIXES = [
    "", "", "", " Pro", " HD", " Lite", " Plus", " 2", " 3D", " Go",
    " VIP", " Express", " Deluxe",
]

#: Generic names shared by many unrelated legitimate apps (the paper's
#: "Flashlight / Calculator / Wallpaper" caveat in Section 6.1).
COMMON_APP_NAMES = [
    "Flashlight",
    "Calculator",
    "Wallpaper",
    "Compass",
    "Notepad",
    "Alarm Clock",
    "File Manager",
    "QR Scanner",
    "Weather",
    "Ringtones",
]


def _pick(rng: np.random.Generator, words) -> str:
    return words[int(rng.integers(0, len(words)))]


def package_name(rng: np.random.Generator) -> str:
    """Generate a plausible, globally unique-ish Android package name."""
    tld = _pick(rng, _TLDS)
    company = _pick(rng, _COMPANY_WORDS) + _pick(rng, _COMPANY_WORDS)
    product = _pick(rng, _PRODUCT_WORDS)
    # A numeric disambiguator keeps collision probability negligible while
    # staying a legal Java package segment.
    tag = int(rng.integers(0, 10**6))
    return f"{tld}.{company}.{product}{tag:x}"


def app_display_name(rng: np.random.Generator, common_fraction: float = 0.02) -> str:
    """Generate a display name; a small fraction are generic common names."""
    if rng.random() < common_fraction:
        return _pick(rng, COMMON_APP_NAMES)
    brand = _pick(rng, _COMPANY_WORDS).capitalize()
    product = _pick(rng, _PRODUCT_WORDS).capitalize()
    suffix = _pick(rng, _NAME_SUFFIXES)
    return f"{brand} {product}{suffix}"


#: Hanzi drawn from real Chinese app-market names (手机助手, 应用宝,
#: 豌豆荚, ...).  Used by :func:`cjk_display_name` only — the ecosystem
#: generator sticks to the pinyin-flavored ASCII vocabulary above, so
#: world digests are untouched by this table.
_CJK_CHARS = "手机助应用宝安卓市场豌豆荚百度腾讯软件商店游戏视频音乐阅读"

_CJK_SUFFIXES = ["", "", "HD", "Pro", "极速版", "免费版"]


def cjk_display_name(rng: np.random.Generator) -> str:
    """Generate a display name mixing hanzi and ASCII.

    Exercises non-ASCII round-trips (wire codec, store serialization)
    in tests; never wired into ecosystem generation.
    """
    length = int(rng.integers(2, 5))
    name = "".join(_pick(rng, _CJK_CHARS) for _ in range(length))
    suffix = _pick(rng, _CJK_SUFFIXES)
    return f"{name} {suffix}".strip() if suffix else name


def developer_name(rng: np.random.Generator, region: str) -> str:
    """Generate a developer/company display name for the given region."""
    word_a = _pick(rng, _COMPANY_WORDS).capitalize()
    word_b = _pick(rng, _COMPANY_WORDS).capitalize()
    if region == "china":
        kind = _pick(rng, ["Network Technology", "Mobile", "Software", "Keji"])
        return f"{word_a}{word_b} {kind} Co., Ltd."
    kind = _pick(rng, ["Labs", "Studio", "Inc.", "Apps", "Games", "LLC"])
    return f"{word_a} {word_b} {kind}"
