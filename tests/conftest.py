"""Shared fixtures.

``study`` runs one small end-to-end study per test session; integration
and shape tests share it.  Unit tests use the lightweight builders
(``make_apk_bytes``, ``make_record``) instead.
"""

from __future__ import annotations

import pytest

from repro import Study, StudyConfig
from repro.apk.archive import parse_apk, serialize_apk
from repro.apk.models import Apk, CodePackage, Manifest
from repro.crawler.snapshot import CrawlRecord

#: Session-wide study parameters; small but large enough for shapes.
STUDY_SEED = 42
STUDY_SCALE = 0.0005


@pytest.fixture(scope="session")
def study():
    """One full end-to-end study result shared by the whole session."""
    return Study(StudyConfig(seed=STUDY_SEED, scale=STUDY_SCALE)).run()


@pytest.fixture(scope="session")
def snapshot(study):
    return study.snapshot


@pytest.fixture(scope="session")
def units(study):
    return study.units


def build_apk(
    package="com.example.app",
    version_code=3,
    version_name="1.2.0",
    min_sdk=9,
    target_sdk=19,
    permissions=("INTERNET",),
    packages=None,
    signer="deadbeef00000001",
    signer_name="Example Dev",
    meta_inf=(),
    obfuscated_by=None,
):
    """Build a small in-memory Apk model for unit tests."""
    if packages is None:
        packages = (
            CodePackage(
                name=package,
                features={1: 2, 5: 1, 42: 3},
                blocks=(101, 102, 103),
            ),
        )
    return Apk(
        manifest=Manifest(
            package=package,
            version_code=version_code,
            version_name=version_name,
            min_sdk=min_sdk,
            target_sdk=target_sdk,
            permissions=tuple(permissions),
        ),
        packages=tuple(packages),
        signer_fingerprint=signer,
        signer_name=signer_name,
        meta_inf=tuple(meta_inf),
        obfuscated_by=obfuscated_by,
    )


def make_apk_bytes(**kwargs) -> bytes:
    return serialize_apk(build_apk(**kwargs))


def make_parsed(**kwargs):
    return parse_apk(make_apk_bytes(**kwargs))


def make_record(
    market_id="tencent",
    package="com.example.app",
    app_name="Example App",
    version_name="1.2.0",
    version_code=3,
    category="Tools",
    downloads=5000,
    install_range=None,
    rating=4.2,
    updated_day=2500,
    developer_name="Example Dev",
    crawl_day=2784.0,
    apk=None,
):
    """Build a CrawlRecord for unit tests."""
    return CrawlRecord(
        market_id=market_id,
        package=package,
        app_name=app_name,
        version_name=version_name,
        version_code=version_code,
        category=category,
        downloads=downloads,
        install_range=install_range,
        rating=rating,
        updated_day=updated_day,
        developer_name=developer_name,
        crawl_day=crawl_day,
        apk=apk,
    )
