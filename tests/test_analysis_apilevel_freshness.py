"""Tests for API-level and freshness analyses."""

import datetime

import pytest

from repro.analysis.apilevel import (
    API_LEVEL_BUCKETS,
    figure3_series,
    low_api_share,
    min_api_distribution,
)
from repro.analysis.freshness import (
    YEAR_BUCKETS,
    pre2017_share,
    recent_update_share,
    release_year_distribution,
)
from repro.crawler.snapshot import Snapshot
from repro.util.simtime import FIRST_CRAWL_DAY, date_to_day

from conftest import make_parsed, make_record


class TestMinApi:
    def _snap(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", apk=make_parsed(min_sdk=4)))
        snap.add(make_record(package="com.b", apk=make_parsed(min_sdk=8)))
        snap.add(make_record(package="com.c",
                             apk=make_parsed(min_sdk=21, target_sdk=25)))
        snap.add(make_record(package="com.d"))  # no APK: excluded
        return snap

    def test_distribution_buckets(self):
        dist = min_api_distribution(self._snap(), "tencent")
        assert dist[API_LEVEL_BUCKETS.index("<7")] == pytest.approx(1 / 3)
        assert dist[API_LEVEL_BUCKETS.index("8")] == pytest.approx(1 / 3)
        assert dist[API_LEVEL_BUCKETS.index(">16")] == pytest.approx(1 / 3)

    def test_low_api_share(self):
        assert low_api_share(self._snap(), "tencent") == pytest.approx(2 / 3)

    def test_empty_market(self):
        assert min_api_distribution(Snapshot("t"), "x") == [0.0] * len(API_LEVEL_BUCKETS)

    def test_figure3_series_shape(self):
        series = figure3_series(self._snap())
        assert len(series["google_play"]) == len(API_LEVEL_BUCKETS)
        assert len(series["chinese_box"]) == len(API_LEVEL_BUCKETS)


class TestFreshness:
    def _records(self):
        return [
            make_record(package="com.a",
                        updated_day=date_to_day(datetime.date(2013, 6, 1))),
            make_record(package="com.b",
                        updated_day=date_to_day(datetime.date(2016, 6, 1))),
            make_record(package="com.c", updated_day=FIRST_CRAWL_DAY - 30),
        ]

    def test_year_distribution(self):
        dist = release_year_distribution(self._records())
        assert dist[YEAR_BUCKETS.index("2013")] == pytest.approx(1 / 3)
        assert dist[YEAR_BUCKETS.index("2017")] == pytest.approx(1 / 3)

    def test_pre2017_share(self):
        assert pre2017_share(self._records()) == pytest.approx(2 / 3)

    def test_recent_share(self):
        assert recent_update_share(self._records()) == pytest.approx(1 / 3)

    def test_empty(self):
        assert pre2017_share([]) == 0.0
        assert recent_update_share([]) == 0.0
        assert release_year_distribution([]) == [0.0] * len(YEAR_BUCKETS)

    def test_old_bucket(self):
        records = [make_record(updated_day=date_to_day(datetime.date(2011, 1, 5)))]
        dist = release_year_distribution(records)
        assert dist[0] == 1.0
