"""Tests for signature- and code-based clone detection."""

import pytest

from repro.analysis.clones import (
    CodeCloneDetector,
    block_overlap,
    detect_signature_clones,
    feature_distance,
)
from repro.analysis.corpus import build_units
from repro.apk.models import CodePackage
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


class TestFeatureDistance:
    def test_identical(self):
        assert feature_distance({1: 2, 3: 4}, {1: 2, 3: 4}) == 0.0

    def test_disjoint(self):
        assert feature_distance({1: 2}, {2: 2}) == 1.0

    def test_formula(self):
        # |3-1| / (3+1) = 0.5
        assert feature_distance({1: 3}, {1: 1}) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = {1: 3, 2: 1}, {1: 1, 4: 2}
        assert feature_distance(a, b) == feature_distance(b, a)

    def test_empty(self):
        assert feature_distance({}, {}) == 0.0

    def test_triangle_like_monotonicity(self):
        base = {i: 5 for i in range(20)}
        near = {**base, 0: 6}
        far = {**base, **{i: 1 for i in range(20, 30)}}
        assert feature_distance(base, near) < feature_distance(base, far)


class TestBlockOverlap:
    def test_full(self):
        assert block_overlap((1, 2, 3), (1, 2, 3)) == 1.0

    def test_partial_uses_max(self):
        assert block_overlap((1, 2, 3, 4), (1, 2)) == pytest.approx(0.5)

    def test_empty(self):
        assert block_overlap((), (1,)) == 0.0


def _record(package, signer, own_features, blocks, market="tencent",
            downloads=100, version_code=3):
    apk = make_parsed(
        package=package,
        version_code=version_code,
        packages=(CodePackage(package, dict(own_features), tuple(blocks)),),
        signer=signer,
    )
    return make_record(
        market_id=market, package=package, downloads=downloads,
        version_code=version_code, apk=apk,
    )


BASE_FEATURES = {i: 10 for i in range(30)}
BASE_BLOCKS = tuple(range(1000, 1040))


class TestSignatureClones:
    def test_multi_signer_package_flagged(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.a", "2" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=50))
        analysis = detect_signature_clones(build_units(snap))
        assert ("com.a", "2" * 16) in analysis.clone_units
        assert analysis.originals["com.a"] == ("com.a", "1" * 16)

    def test_single_signer_not_flagged(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play"))
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent"))
        analysis = detect_signature_clones(build_units(snap))
        assert not analysis.clone_units

    def test_market_rates_exclude_original(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.a", "2" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=50))
        snap.add(_record("com.b", "3" * 16, {50: 1}, (9,), market="tencent"))
        rates = detect_signature_clones(build_units(snap)).market_rates(snap)
        assert rates["tencent"] == pytest.approx(0.5)
        assert rates["google_play"] == 0.0

    def test_developers_per_package(self):
        snap = Snapshot("t")
        for i, market in enumerate(("tencent", "baidu", "anzhi")):
            snap.add(_record("com.a", f"{i}" * 16, BASE_FEATURES, BASE_BLOCKS,
                             market=market, downloads=100 - i))
        counts = detect_signature_clones(build_units(snap)).developers_per_package()
        assert counts == [3]


def _clone_features(extra=1):
    features = dict(BASE_FEATURES)
    for i in range(extra):
        features[100 + i] = 2
    return features


def _clone_blocks(keep=37):
    return BASE_BLOCKS[:keep] + tuple(range(5000, 5000 + len(BASE_BLOCKS) - keep))


class TestCodeClones:
    def _snap_with_clone(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.copy", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        snap.add(_record("com.other", "3" * 16, {i: 3 for i in range(200, 230)},
                         tuple(range(8000, 8040)), market="tencent"))
        return snap

    def test_clone_detected(self):
        snap = self._snap_with_clone()
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.copy", "2" * 16) in analysis.clone_units
        assert analysis.original_of[("com.copy", "2" * 16)] == ("com.orig", "1" * 16)

    def test_unrelated_app_not_flagged(self):
        snap = self._snap_with_clone()
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.other", "3" * 16) not in analysis.clone_units

    def test_same_signer_excluded(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.port", "1" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_same_package_excluded(self):
        snap = Snapshot("t")
        snap.add(_record("com.same", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.same", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units  # signature-based territory

    def test_low_block_overlap_rejected(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.half", "2" * 16, _clone_features(),
                         _clone_blocks(keep=20), market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_large_feature_distance_rejected(self):
        far = dict(BASE_FEATURES)
        for i in range(300, 330):
            far[i] = 10
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.far", "2" * 16, far, _clone_blocks(keep=36),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_orientation_by_downloads(self):
        snap = Snapshot("t")
        snap.add(_record("com.poor", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=10))
        snap.add(_record("com.rich", "2" * 16, _clone_features(), _clone_blocks(),
                         market="google_play", downloads=10**7))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.poor", "1" * 16) in analysis.clone_units

    def test_library_code_removed_before_comparison(self):
        # Two unrelated apps share a big library; removing it must stop a
        # false positive pairing.
        lib = CodePackage("com.biglib", {i: 10 for i in range(500, 560)},
                          tuple(range(9000, 9060)))
        snap = Snapshot("t")
        for i in range(4):
            own = CodePackage(
                f"com.app{i}", {i * 7 + 1: 2, i * 7 + 2: 1},
                (i * 13 + 1, i * 13 + 2),
            )
            apk = make_parsed(package=f"com.app{i}", packages=(own, lib),
                              signer=f"{i:016x}")
            snap.add(make_record(market_id="tencent", package=f"com.app{i}",
                                 downloads=100, apk=apk))
        units = build_units(snap)
        from repro.analysis.libraries import LibraryDetector

        detection = LibraryDetector().fit(units)
        with_removal = CodeCloneDetector().detect(units, detection)
        assert not with_removal.clone_units
        without_removal = CodeCloneDetector().detect(units, None)
        assert without_removal.clone_units  # the ablation: FPs without LibRadar

    def test_heatmap_source_attribution(self):
        snap = self._snap_with_clone()
        units = build_units(snap)
        analysis = CodeCloneDetector().detect(units)
        units_by_key = {(u.package, u.signer): u for u in units}
        heatmap = analysis.heatmap(units_by_key, ("google_play", "tencent"))
        assert heatmap[("google_play", "tencent")] == 1
        assert heatmap[("tencent", "google_play")] == 0


class TestCandidateBlocking:
    """The prefix filter must generate a superset of every reportable pair."""

    def _random_block_sets(self, seed, n=80):
        import random

        rng = random.Random(seed)
        sets = []
        for _ in range(n):
            size = rng.randint(0, 60)
            base = rng.randint(0, 40) * 25
            sets.append(tuple(rng.randrange(base, base + 120)
                              for _ in range(size)))
        # A few near-duplicate pairs that must qualify.
        for _ in range(8):
            src = rng.randrange(len(sets))
            blocks = list(sets[src])
            for _ in range(min(3, len(blocks))):
                if blocks and rng.random() < 0.5:
                    blocks[rng.randrange(len(blocks))] = rng.randrange(10_000)
            sets.append(tuple(blocks))
        return sets

    def test_prefix_covers_every_reportable_pair(self):
        # The guarantee: any pair that could pass scoring (enough shared
        # blocks AND block overlap >= the threshold) must be generated.
        # Sub-threshold exhaustive candidates may legitimately be pruned.
        detector = CodeCloneDetector()
        for seed in range(5):
            blocks = self._random_block_sets(seed)
            sets = [set(b) for b in blocks]
            qualifying = {
                (i, j)
                for i in range(len(sets))
                for j in range(i + 1, len(sets))
                if sets[i] and sets[j]
                and len(sets[i] & sets[j]) >= detector.min_shared_blocks
                and (len(sets[i] & sets[j]) / max(len(sets[i]), len(sets[j]))
                     >= detector.overlap_threshold)
            }
            prefix = set(detector._candidate_pairs_prefix(blocks))
            assert qualifying <= prefix, (
                f"seed {seed}: reportable pairs missing from prefix: "
                f"{sorted(qualifying - prefix)[:5]}"
            )

    def test_strategies_detect_identically(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.copy", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        snap.add(_record("com.other", "3" * 16, {i: 3 for i in range(200, 230)},
                         tuple(range(8000, 8040)), market="tencent"))
        units = build_units(snap)
        prefix = CodeCloneDetector(candidate_strategy="prefix").detect(units)
        exhaustive = CodeCloneDetector(candidate_strategy="exhaustive").detect(units)
        assert set(prefix.pairs) >= set(exhaustive.pairs)
        assert prefix.clone_units >= exhaustive.clone_units
        assert ("com.copy", "2" * 16) in prefix.clone_units

    def test_prefix_prunes_sub_threshold_pairs(self):
        # The point of blocking: dissimilar apps sharing a handful of
        # common blocks never collide in each other's prefixes.
        detector = CodeCloneDetector(min_shared_blocks=2)
        # 40 apps all sharing 2 common blocks but otherwise disjoint:
        # exhaustive emits every pair, the prefix filter none of them.
        blocks = [
            tuple([1, 2] + list(range(100 * i, 100 * i + 40)))
            for i in range(40)
        ]
        exhaustive = detector._candidate_pairs_exhaustive(blocks)
        prefix = detector._candidate_pairs_prefix(blocks)
        assert len(exhaustive) == 40 * 39 // 2
        assert prefix == []

    def test_unknown_strategy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CodeCloneDetector(candidate_strategy="bogus")
