"""Tests for signature- and code-based clone detection."""

import numpy as np
import pytest

from repro.analysis.clones import (
    CodeCloneDetector,
    block_overlap,
    clone_market_rates,
    derive_lsh_params,
    detect_signature_clones,
    feature_distance,
    measure_strategy_recall,
    minhash_jaccard_estimate,
    minhash_signature,
    overlap_to_jaccard,
    _minhash_coeffs,
)
from repro.analysis.corpus import build_units
from repro.analysis.engine import AnalysisEngine
from repro.apk.models import CodePackage
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


class TestFeatureDistance:
    def test_identical(self):
        assert feature_distance({1: 2, 3: 4}, {1: 2, 3: 4}) == 0.0

    def test_disjoint(self):
        assert feature_distance({1: 2}, {2: 2}) == 1.0

    def test_formula(self):
        # |3-1| / (3+1) = 0.5
        assert feature_distance({1: 3}, {1: 1}) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = {1: 3, 2: 1}, {1: 1, 4: 2}
        assert feature_distance(a, b) == feature_distance(b, a)

    def test_empty(self):
        assert feature_distance({}, {}) == 0.0

    def test_triangle_like_monotonicity(self):
        base = {i: 5 for i in range(20)}
        near = {**base, 0: 6}
        far = {**base, **{i: 1 for i in range(20, 30)}}
        assert feature_distance(base, near) < feature_distance(base, far)


class TestBlockOverlap:
    def test_full(self):
        assert block_overlap((1, 2, 3), (1, 2, 3)) == 1.0

    def test_partial_uses_max(self):
        assert block_overlap((1, 2, 3, 4), (1, 2)) == pytest.approx(0.5)

    def test_empty(self):
        assert block_overlap((), (1,)) == 0.0


def _record(package, signer, own_features, blocks, market="tencent",
            downloads=100, version_code=3):
    apk = make_parsed(
        package=package,
        version_code=version_code,
        packages=(CodePackage(package, dict(own_features), tuple(blocks)),),
        signer=signer,
    )
    return make_record(
        market_id=market, package=package, downloads=downloads,
        version_code=version_code, apk=apk,
    )


BASE_FEATURES = {i: 10 for i in range(30)}
BASE_BLOCKS = tuple(range(1000, 1040))


class TestSignatureClones:
    def test_multi_signer_package_flagged(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.a", "2" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=50))
        analysis = detect_signature_clones(build_units(snap))
        assert ("com.a", "2" * 16) in analysis.clone_units
        assert analysis.originals["com.a"] == ("com.a", "1" * 16)

    def test_single_signer_not_flagged(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play"))
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent"))
        analysis = detect_signature_clones(build_units(snap))
        assert not analysis.clone_units

    def test_market_rates_exclude_original(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.a", "2" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=50))
        snap.add(_record("com.b", "3" * 16, {50: 1}, (9,), market="tencent"))
        rates = detect_signature_clones(build_units(snap)).market_rates(snap)
        assert rates["tencent"] == pytest.approx(0.5)
        assert rates["google_play"] == 0.0

    def test_developers_per_package(self):
        snap = Snapshot("t")
        for i, market in enumerate(("tencent", "baidu", "anzhi")):
            snap.add(_record("com.a", f"{i}" * 16, BASE_FEATURES, BASE_BLOCKS,
                             market=market, downloads=100 - i))
        counts = detect_signature_clones(build_units(snap)).developers_per_package()
        assert counts == [3]


def _clone_features(extra=1):
    features = dict(BASE_FEATURES)
    for i in range(extra):
        features[100 + i] = 2
    return features


def _clone_blocks(keep=37):
    return BASE_BLOCKS[:keep] + tuple(range(5000, 5000 + len(BASE_BLOCKS) - keep))


class TestCodeClones:
    def _snap_with_clone(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.copy", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        snap.add(_record("com.other", "3" * 16, {i: 3 for i in range(200, 230)},
                         tuple(range(8000, 8040)), market="tencent"))
        return snap

    def test_clone_detected(self):
        snap = self._snap_with_clone()
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.copy", "2" * 16) in analysis.clone_units
        assert analysis.original_of[("com.copy", "2" * 16)] == ("com.orig", "1" * 16)

    def test_unrelated_app_not_flagged(self):
        snap = self._snap_with_clone()
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.other", "3" * 16) not in analysis.clone_units

    def test_same_signer_excluded(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.port", "1" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_same_package_excluded(self):
        snap = Snapshot("t")
        snap.add(_record("com.same", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.same", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units  # signature-based territory

    def test_low_block_overlap_rejected(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.half", "2" * 16, _clone_features(),
                         _clone_blocks(keep=20), market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_large_feature_distance_rejected(self):
        far = dict(BASE_FEATURES)
        for i in range(300, 330):
            far[i] = 10
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.far", "2" * 16, far, _clone_blocks(keep=36),
                         market="tencent", downloads=10))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert not analysis.clone_units

    def test_orientation_by_downloads(self):
        snap = Snapshot("t")
        snap.add(_record("com.poor", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=10))
        snap.add(_record("com.rich", "2" * 16, _clone_features(), _clone_blocks(),
                         market="google_play", downloads=10**7))
        analysis = CodeCloneDetector().detect(build_units(snap))
        assert ("com.poor", "1" * 16) in analysis.clone_units

    def test_library_code_removed_before_comparison(self):
        # Two unrelated apps share a big library; removing it must stop a
        # false positive pairing.
        lib = CodePackage("com.biglib", {i: 10 for i in range(500, 560)},
                          tuple(range(9000, 9060)))
        snap = Snapshot("t")
        for i in range(4):
            own = CodePackage(
                f"com.app{i}", {i * 7 + 1: 2, i * 7 + 2: 1},
                (i * 13 + 1, i * 13 + 2),
            )
            apk = make_parsed(package=f"com.app{i}", packages=(own, lib),
                              signer=f"{i:016x}")
            snap.add(make_record(market_id="tencent", package=f"com.app{i}",
                                 downloads=100, apk=apk))
        units = build_units(snap)
        from repro.analysis.libraries import LibraryDetector

        detection = LibraryDetector().fit(units)
        with_removal = CodeCloneDetector().detect(units, detection)
        assert not with_removal.clone_units
        without_removal = CodeCloneDetector().detect(units, None)
        assert without_removal.clone_units  # the ablation: FPs without LibRadar

    def test_heatmap_source_attribution(self):
        snap = self._snap_with_clone()
        units = build_units(snap)
        analysis = CodeCloneDetector().detect(units)
        units_by_key = {(u.package, u.signer): u for u in units}
        heatmap = analysis.heatmap(units_by_key, ("google_play", "tencent"))
        assert heatmap[("google_play", "tencent")] == 1
        assert heatmap[("tencent", "google_play")] == 0


class TestCandidateBlocking:
    """The prefix filter must generate a superset of every reportable pair."""

    def _random_block_sets(self, seed, n=80):
        import random

        rng = random.Random(seed)
        sets = []
        for _ in range(n):
            size = rng.randint(0, 60)
            base = rng.randint(0, 40) * 25
            sets.append(tuple(rng.randrange(base, base + 120)
                              for _ in range(size)))
        # A few near-duplicate pairs that must qualify.
        for _ in range(8):
            src = rng.randrange(len(sets))
            blocks = list(sets[src])
            for _ in range(min(3, len(blocks))):
                if blocks and rng.random() < 0.5:
                    blocks[rng.randrange(len(blocks))] = rng.randrange(10_000)
            sets.append(tuple(blocks))
        return sets

    def test_prefix_covers_every_reportable_pair(self):
        # The guarantee: any pair that could pass scoring (enough shared
        # blocks AND block overlap >= the threshold) must be generated.
        # Sub-threshold exhaustive candidates may legitimately be pruned.
        detector = CodeCloneDetector()
        for seed in range(5):
            blocks = self._random_block_sets(seed)
            sets = [set(b) for b in blocks]
            qualifying = {
                (i, j)
                for i in range(len(sets))
                for j in range(i + 1, len(sets))
                if sets[i] and sets[j]
                and len(sets[i] & sets[j]) >= detector.min_shared_blocks
                and (len(sets[i] & sets[j]) / max(len(sets[i]), len(sets[j]))
                     >= detector.overlap_threshold)
            }
            prefix = set(detector._candidate_pairs_prefix(blocks))
            assert qualifying <= prefix, (
                f"seed {seed}: reportable pairs missing from prefix: "
                f"{sorted(qualifying - prefix)[:5]}"
            )

    def test_strategies_detect_identically(self):
        snap = Snapshot("t")
        snap.add(_record("com.orig", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.copy", "2" * 16, _clone_features(), _clone_blocks(),
                         market="tencent", downloads=10))
        snap.add(_record("com.other", "3" * 16, {i: 3 for i in range(200, 230)},
                         tuple(range(8000, 8040)), market="tencent"))
        units = build_units(snap)
        prefix = CodeCloneDetector(candidate_strategy="prefix").detect(units)
        exhaustive = CodeCloneDetector(candidate_strategy="exhaustive").detect(units)
        assert set(prefix.pairs) >= set(exhaustive.pairs)
        assert prefix.clone_units >= exhaustive.clone_units
        assert ("com.copy", "2" * 16) in prefix.clone_units

    def test_prefix_prunes_sub_threshold_pairs(self):
        # The point of blocking: dissimilar apps sharing a handful of
        # common blocks never collide in each other's prefixes.
        detector = CodeCloneDetector(min_shared_blocks=2)
        # 40 apps all sharing 2 common blocks but otherwise disjoint:
        # exhaustive emits every pair, the prefix filter none of them.
        blocks = [
            tuple([1, 2] + list(range(100 * i, 100 * i + 40)))
            for i in range(40)
        ]
        exhaustive = detector._candidate_pairs_exhaustive(blocks)
        prefix = detector._candidate_pairs_prefix(blocks)
        assert len(exhaustive) == 40 * 39 // 2
        assert prefix == []

    def test_unknown_strategy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CodeCloneDetector(candidate_strategy="bogus")

    def test_bad_permutation_count_rejected(self):
        with pytest.raises(ValueError):
            CodeCloneDetector(minhash_permutations=0)


class TestMinHashEstimator:
    """The MinHash signature must estimate Jaccard similarity."""

    def _random_pair(self, rng, universe=5000):
        a = {rng.randrange(universe) for _ in range(rng.randint(30, 200))}
        shared = rng.random()
        b = {x for x in a if rng.random() < shared}
        b |= {rng.randrange(universe) for _ in range(rng.randint(0, 80))}
        return a, b

    def test_estimate_converges_to_true_jaccard(self):
        # Each signature position agrees with probability J, so the
        # estimate is a mean of k Bernoulli(J) draws: sd = sqrt(J(1-J)/k).
        # With k=256, a 5-sigma band (~0.16 worst case) never trips on a
        # fixed seed while still catching a broken hash family.
        import random

        k = 256
        coeffs = _minhash_coeffs(seed=0, num_perm=k)
        rng = random.Random(7)
        for _ in range(25):
            a, b = self._random_pair(rng)
            true_j = len(a & b) / len(a | b) if a | b else 1.0
            est = minhash_jaccard_estimate(
                minhash_signature(tuple(a), coeffs),
                minhash_signature(tuple(b), coeffs),
            )
            sigma = max((true_j * (1 - true_j) / k) ** 0.5, 1e-9)
            assert abs(est - true_j) <= max(5 * sigma, 0.02), (
                f"estimate {est:.3f} vs true {true_j:.3f}"
            )

    def test_identical_sets_estimate_one(self):
        coeffs = _minhash_coeffs(seed=0, num_perm=64)
        sig = minhash_signature((1, 2, 3, 4, 5), coeffs)
        assert minhash_jaccard_estimate(sig, sig) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        coeffs = _minhash_coeffs(seed=0, num_perm=128)
        a = minhash_signature(tuple(range(100)), coeffs)
        b = minhash_signature(tuple(range(10_000, 10_100)), coeffs)
        assert minhash_jaccard_estimate(a, b) < 0.05

    def test_signature_ignores_block_order_and_multiplicity(self):
        coeffs = _minhash_coeffs(seed=0, num_perm=64)
        a = minhash_signature((3, 1, 2, 2, 1), coeffs)
        b = minhash_signature((1, 2, 3), coeffs)
        assert np.array_equal(a, b)

    def test_seed_changes_signature(self):
        blocks = tuple(range(50))
        a = minhash_signature(blocks, _minhash_coeffs(seed=0, num_perm=64))
        b = minhash_signature(blocks, _minhash_coeffs(seed=1, num_perm=64))
        assert not np.array_equal(a, b)

    def test_overlap_to_jaccard_bound(self):
        # overlap t guarantees J >= t/(2-t); equality at |A| = |B|.
        assert overlap_to_jaccard(1.0) == 1.0
        assert overlap_to_jaccard(0.85) == pytest.approx(0.85 / 1.15)
        a = frozenset(range(100))
        b = frozenset(range(15, 115))  # |A∩B|=85, overlap 0.85
        jac = len(a & b) / len(a | b)
        assert jac == pytest.approx(overlap_to_jaccard(0.85))


class TestLSHParams:
    def test_default_derivation(self):
        assert derive_lsh_params(0.85, num_perm=128) == (32, 4)

    def test_band_budget_respected(self):
        for t in (0.5, 0.7, 0.85, 0.95):
            bands, rows = derive_lsh_params(t, num_perm=128)
            assert bands * rows <= 128

    def test_collision_probability_meets_target(self):
        for t in (0.5, 0.7, 0.85, 0.95):
            bands, rows = derive_lsh_params(t, num_perm=128)
            j = overlap_to_jaccard(t)
            assert 1 - (1 - j**rows) ** bands >= 0.999

    def test_rows_maximal_for_target(self):
        # The contract: the next-steeper configuration must miss the
        # recall target (otherwise derive should have picked it).
        bands, rows = derive_lsh_params(0.85, num_perm=128)
        j = overlap_to_jaccard(0.85)
        steeper_rows = rows + 1
        steeper_bands = 128 // steeper_rows
        assert 1 - (1 - j**steeper_rows) ** steeper_bands < 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_lsh_params(0.0)
        with pytest.raises(ValueError):
            derive_lsh_params(0.85, num_perm=0)


def _family_snapshot(n_families=6, family_size=5, seed=3):
    """A snapshot of near-duplicate families plus unrelated filler —
    big enough that worker-count determinism is non-trivial."""
    import random

    rng = random.Random(seed)
    snap = Snapshot("t")
    for fam in range(n_families):
        base_features = {fam * 50 + i: 10 for i in range(30)}
        base_blocks = list(range(fam * 10_000, fam * 10_000 + 40))
        for member in range(family_size):
            blocks = list(base_blocks)
            for _ in range(min(3, member)):
                blocks[rng.randrange(len(blocks))] = rng.randrange(10**6)
            features = dict(base_features)
            features[9_000 + member] = 1
            snap.add(_record(
                f"com.fam{fam}.m{member}", f"{fam:02d}{member:02d}" * 4,
                features, tuple(blocks),
                market="tencent" if member else "google_play",
                downloads=10**6 if member == 0 else rng.randint(10, 500),
            ))
    for i in range(20):
        snap.add(_record(
            f"com.noise{i}", f"ee{i:02d}" * 4,
            {5_000 + i * 11 + k: 2 for k in range(10)},
            tuple(range(500_000 + i * 97, 500_000 + i * 97 + 12)),
            market="baidu", downloads=100,
        ))
    return snap


class TestMinHashCandidates:
    def test_minhash_detects_identically_to_exhaustive(self):
        units = build_units(_family_snapshot())
        minhash = CodeCloneDetector(candidate_strategy="minhash").detect(units)
        exhaustive = CodeCloneDetector(candidate_strategy="exhaustive").detect(units)
        assert minhash.pairs == exhaustive.pairs
        assert minhash.clone_units == exhaustive.clone_units
        assert minhash.original_of == exhaustive.original_of
        assert len(minhash.pairs) > 0

    def test_candidates_identical_across_worker_counts(self):
        detector = CodeCloneDetector(candidate_strategy="minhash")
        corpus = detector.extract(build_units(_family_snapshot()))
        per_width = [
            detector._candidate_pairs(corpus, AnalysisEngine(workers=w))
            for w in (1, 4, 8)
        ]
        assert per_width[0] == per_width[1] == per_width[2]
        assert per_width[0] == sorted(per_width[0])  # canonical order

    def test_reports_identical_across_worker_counts(self):
        units = build_units(_family_snapshot())
        detector = CodeCloneDetector(candidate_strategy="minhash")
        reports = [
            detector.detect(units, engine=AnalysisEngine(workers=w))
            for w in (1, 4, 8)
        ]
        assert reports[0].pairs == reports[1].pairs == reports[2].pairs
        assert reports[0].clone_units == reports[1].clone_units

    def test_same_seed_reproduces_candidates(self):
        corpus = CodeCloneDetector().extract(build_units(_family_snapshot()))
        runs = [
            CodeCloneDetector(
                candidate_strategy="minhash", minhash_seed=9
            )._candidate_pairs(corpus, AnalysisEngine(workers=4))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_detection_stable_across_minhash_seeds(self):
        # Different seeds permute the hash family (candidate sets may
        # differ) but every reportable pair must still be recovered.
        units = build_units(_family_snapshot())
        reference = CodeCloneDetector(candidate_strategy="exhaustive").detect(units)
        for seed in (0, 1):
            probe = CodeCloneDetector(
                candidate_strategy="minhash", minhash_seed=seed
            ).detect(units)
            assert set(probe.pairs) == set(reference.pairs)

    def test_empty_block_units_never_pair(self):
        snap = _family_snapshot(n_families=2)
        snap.add(_record("com.empty", "aa" * 8, {1: 1}, (), market="tencent"))
        units = build_units(snap)
        analysis = CodeCloneDetector(candidate_strategy="minhash").detect(units)
        flagged = {key for pair in analysis.pairs for key in (pair.original, pair.clone)}
        assert ("com.empty", "aa" * 8) not in flagged


class TestStrategyRecallHarness:
    def test_full_recall_on_synthetic_families(self):
        units = build_units(_family_snapshot())
        recall = measure_strategy_recall(units)
        assert recall.strategy == "minhash"
        assert recall.reference == "exhaustive"
        assert recall.reference_pairs > 0
        assert recall.recall == 1.0

    def test_recall_defaults_to_one_when_reference_empty(self):
        snap = Snapshot("t")
        snap.add(_record("com.solo", "1" * 16, BASE_FEATURES, BASE_BLOCKS))
        recall = measure_strategy_recall(build_units(snap))
        assert recall.reference_pairs == 0
        assert recall.recall == 1.0

    def test_recall_on_repackaging_chain_world(self):
        # End-to-end guardrail on a generated adversarial world: deep
        # repackaging chains and shared-key clusters, the corpus shape
        # the LSH strategy exists for.
        from repro.core.config import StudyConfig
        from repro.core.study import Study

        result = Study(StudyConfig(
            seed=7, scale=0.0002, clone_families="adversarial",
        )).run()
        depths = {app.clone_depth for app in result.world.apps}
        assert max(depths) >= 3, "adversarial world should build chains"
        recall = measure_strategy_recall(result.units, result.library_detection)
        assert recall.reference_pairs > 50
        assert recall.recall >= 0.99


class TestMarketRatesHelper:
    """Both Table 3 columns rate clones through one shared helper."""

    def _mixed_snapshot(self):
        snap = Snapshot("t")
        # Signature-based clone: same package, two signers.
        snap.add(_record("com.sb", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="google_play", downloads=10**7))
        snap.add(_record("com.sb", "2" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent", downloads=50))
        # Code-based clone: different package, near-identical code —
        # distinct from the SB pair's code so the groups never cross-pair.
        cb_features = {i: 10 for i in range(200, 230)}
        cb_blocks = tuple(range(2000, 2040))
        cb_copy_features = {**cb_features, 300: 2}
        cb_copy_blocks = cb_blocks[:37] + tuple(range(6000, 6003))
        snap.add(_record("com.cb.orig", "3" * 16, cb_features, cb_blocks,
                         market="google_play", downloads=10**6))
        snap.add(_record("com.cb.copy", "4" * 16, cb_copy_features,
                         cb_copy_blocks, market="tencent", downloads=10))
        # Clean filler in both markets.
        snap.add(_record("com.clean", "5" * 16, {900: 3}, (42, 43),
                         market="tencent", downloads=10))
        snap.add(_record("com.clean2", "6" * 16, {901: 3}, (44, 45),
                         market="baidu", downloads=10))
        return snap

    def test_regression_pin_both_columns(self):
        # Pinned outputs: tencent hosts 3 listings (1 SB clone, 1 CB
        # clone), google_play hosts the originals, baidu only filler.
        snap = self._mixed_snapshot()
        units = build_units(snap)
        sb = detect_signature_clones(units).market_rates(snap)
        cb = CodeCloneDetector().detect(units).market_rates(snap)
        assert sb == {
            "google_play": 0.0,
            "tencent": pytest.approx(1 / 3),
            "baidu": 0.0,
        }
        assert cb == {
            "google_play": 0.0,
            "tencent": pytest.approx(1 / 3),
            "baidu": 0.0,
        }

    def test_analyses_delegate_to_shared_helper(self):
        snap = self._mixed_snapshot()
        units = build_units(snap)
        sig = detect_signature_clones(units)
        code = CodeCloneDetector().detect(units)
        assert sig.market_rates(snap) == clone_market_rates(sig.clone_units, snap)
        assert code.market_rates(snap) == clone_market_rates(code.clone_units, snap)

    def test_empty_market_rates_zero(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "1" * 16, BASE_FEATURES, BASE_BLOCKS,
                         market="tencent"))
        assert clone_market_rates(set(), snap) == {"tencent": 0.0}
