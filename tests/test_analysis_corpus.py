"""Tests for corpus preparation (app units)."""

from repro.analysis.corpus import build_units, normalized_downloads
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


def _snap(*records):
    snap = Snapshot("t")
    for record in records:
        snap.add(record)
    return snap


class TestNormalizedDownloads:
    def test_exact_passthrough(self):
        assert normalized_downloads(make_record(downloads=123)) == 123

    def test_range_lower_bound(self):
        record = make_record(downloads=None, install_range=(50_000, 100_000))
        assert normalized_downloads(record) == 50_000

    def test_missing(self):
        assert normalized_downloads(make_record(downloads=None)) is None


class TestBuildUnits:
    def test_groups_by_package_and_signer(self):
        apk = make_parsed(signer="aa" * 8)
        snap = _snap(
            make_record(market_id="tencent", package="com.a", apk=apk),
            make_record(market_id="baidu", package="com.a", apk=apk),
        )
        units = build_units(snap)
        assert len(units) == 1
        assert units[0].markets == ("baidu", "tencent")

    def test_different_signers_split(self):
        snap = _snap(
            make_record(market_id="tencent", package="com.a",
                        apk=make_parsed(signer="aa" * 8)),
            make_record(market_id="baidu", package="com.a",
                        apk=make_parsed(signer="bb" * 8)),
        )
        units = build_units(snap)
        assert len(units) == 2
        assert {u.signer for u in units} == {"aa" * 8, "bb" * 8}

    def test_apkless_joins_sole_signer(self):
        snap = _snap(
            make_record(market_id="tencent", package="com.a",
                        apk=make_parsed(signer="aa" * 8)),
            make_record(market_id="baidu", package="com.a"),
        )
        units = build_units(snap)
        assert len(units) == 1
        assert len(units[0].records) == 2

    def test_apkless_ambiguous_gets_none_unit(self):
        snap = _snap(
            make_record(market_id="tencent", package="com.a",
                        apk=make_parsed(signer="aa" * 8)),
            make_record(market_id="baidu", package="com.a",
                        apk=make_parsed(signer="bb" * 8)),
            make_record(market_id="anzhi", package="com.a"),
        )
        units = build_units(snap)
        assert len(units) == 3
        assert any(u.signer is None for u in units)

    def test_representative_apk_highest_version(self):
        snap = _snap(
            make_record(market_id="tencent", package="com.a", version_code=1,
                        apk=make_parsed(signer="aa" * 8, version_code=1)),
            make_record(market_id="baidu", package="com.a", version_code=5,
                        apk=make_parsed(signer="aa" * 8, version_code=5)),
        )
        units = build_units(snap)
        assert units[0].apk.manifest.version_code == 5
        assert units[0].max_version_code == 5

    def test_max_downloads_across_markets(self):
        apk = make_parsed(signer="aa" * 8)
        snap = _snap(
            make_record(market_id="tencent", package="com.a", downloads=10, apk=apk),
            make_record(market_id="google_play", package="com.a", downloads=None,
                        install_range=(1_000_000, 10_000_000), apk=apk),
        )
        units = build_units(snap)
        assert units[0].max_downloads == 1_000_000

    def test_no_download_data(self):
        snap = _snap(make_record(downloads=None, apk=make_parsed()))
        assert build_units(snap)[0].max_downloads is None


class TestDeterministicOrdering:
    """The representative record must not depend on ingestion order."""

    def _records(self):
        apk = make_parsed(signer="aa" * 8)
        return [
            make_record(market_id=market, package="com.a",
                        app_name=f"Name via {market}", apk=apk)
            for market in ("tencent", "baidu", "google_play", "anzhi")
        ]

    def test_records_sorted_canonically(self):
        from repro.analysis.corpus import record_sort_key

        units = build_units(_snap(*self._records()))
        keys = [record_sort_key(r) for r in units[0].records]
        assert keys == sorted(keys)

    def test_representative_record_order_independent(self):
        records = self._records()
        forward = build_units(_snap(*records))
        reversed_ = build_units(_snap(*reversed(records)))
        assert forward[0].app_name == reversed_[0].app_name
        assert [r.market_id for r in forward[0].records] == [
            r.market_id for r in reversed_[0].records
        ]

    def test_unit_list_order_independent(self):
        apk_a = make_parsed(package="com.a", signer="aa" * 8)
        apk_b = make_parsed(package="com.b", signer="bb" * 8)
        records = [
            make_record(market_id="tencent", package="com.b", apk=apk_b),
            make_record(market_id="tencent", package="com.a", apk=apk_a),
            make_record(market_id="baidu", package="com.a", apk=apk_a),
        ]
        forward = build_units(_snap(*records))
        reversed_ = build_units(_snap(*reversed(records)))
        assert [(u.package, u.signer) for u in forward] == [
            (u.package, u.signer) for u in reversed_
        ]

    def test_representative_apk_md5_tiebreak_order_independent(self):
        # Same version code, different APK bytes: the MD5 tie-break must
        # pick the same representative either way records arrive.
        apk1 = make_parsed(signer="aa" * 8, target_sdk=19)
        apk2 = make_parsed(signer="aa" * 8, target_sdk=21)
        records = [
            make_record(market_id="tencent", package="com.a", apk=apk1),
            make_record(market_id="baidu", package="com.a", apk=apk2),
        ]
        forward = build_units(_snap(*records))
        reversed_ = build_units(_snap(*reversed(records)))
        assert forward[0].apk.md5 == reversed_[0].apk.md5
