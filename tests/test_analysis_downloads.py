"""Tests for download analysis."""

import pytest

from repro.analysis.downloads import (
    aggregated_downloads,
    bin_index,
    bin_label,
    download_bin_distribution,
    top_download_share,
)
from repro.crawler.snapshot import Snapshot

from conftest import make_record


class TestBins:
    def test_bin_index_edges(self):
        assert bin_index(0) == 0
        assert bin_index(10) == 1
        assert bin_index(99) == 1
        assert bin_index(100) == 2
        assert bin_index(10**7) == 6

    def test_bin_label(self):
        assert bin_label(75_123) == "10K-100K"  # the paper's footnote example
        assert bin_label(3) == "0-10"
        assert bin_label(2_000_000) == ">1M"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bin_index(-5)


class TestDistribution:
    def _snap(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", downloads=5))
        snap.add(make_record(package="com.b", downloads=500))
        snap.add(make_record(package="com.c", downloads=50_000))
        snap.add(make_record(package="com.d", downloads=None))
        return snap

    def test_distribution(self):
        dist = download_bin_distribution(self._snap(), "tencent")
        assert dist[0] == pytest.approx(1 / 3)
        assert dist[2] == pytest.approx(1 / 3)
        assert dist[4] == pytest.approx(1 / 3)

    def test_non_reporting_market_empty(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="xiaomi", downloads=None))
        assert download_bin_distribution(snap, "xiaomi") == [0.0] * 7

    def test_gp_ranges_normalized(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="google_play", package="com.a",
                             downloads=None, install_range=(1_000_000, 10_000_000)))
        dist = download_bin_distribution(snap, "google_play")
        assert dist[6] == 1.0


class TestAggregates:
    def test_aggregated_downloads(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", downloads=100))
        snap.add(make_record(package="com.b", downloads=None,
                             install_range=(1000, 10000)))
        assert aggregated_downloads(snap, "tencent") == 1100

    def test_top_share_concentration(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.big", downloads=10**9))
        for i in range(99):
            snap.add(make_record(package=f"com.small{i}", downloads=10))
        share = top_download_share(snap, "tencent", 0.01)
        assert share > 0.99

    def test_top_share_none_without_data(self):
        snap = Snapshot("t")
        snap.add(make_record(downloads=None))
        assert top_download_share(snap, "tencent", 0.01) is None
