"""Tests for the parallel analysis engine and artifact cache."""

import json

import pytest

from repro.analysis.engine import (
    AnalysisEngine,
    ArtifactCache,
    CacheStats,
    resolve_analysis_workers,
)
from repro.analysis.malware import scan_units
from repro.analysis.permissions import analyze_overprivilege
from repro.analysis.virustotal import VirusTotalService, default_engines
from repro.core.study import StudyResult
from repro.experiments import digest_reports, run_all

from conftest import make_parsed, make_record


def _unit_like(apk):
    """The minimal duck type map_units_cached needs."""

    class Unit:
        def __init__(self, apk):
            self.apk = apk

    return Unit(apk)


class TestResolveAnalysisWorkers:
    def test_explicit(self):
        assert resolve_analysis_workers(3) == 3

    def test_auto_is_positive(self):
        assert resolve_analysis_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_analysis_workers(-1)


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("lib", "1", "ab" * 16, {"x": [1, 2]})
        assert cache.get("lib", "1", "ab" * 16) == {"x": [1, 2]}
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("lib", "1", "cd" * 16) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_version_bump_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("lib", "1", "ab" * 16, "old")
        assert cache.get("lib", "2", "ab" * 16) is None
        assert cache.stats.misses == 1
        # The old version's entry is still intact.
        assert cache.get("lib", "1", "ab" * 16) == "old"

    def test_truncated_entry_is_corrupt_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("lib", "1", "ab" * 16, {"x": 1})
        path = cache.entry_path("lib", "1", "ab" * 16)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get("lib", "1", "ab" * 16) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_key_mismatch_is_corrupt_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("lib", "1", "ab" * 16, 42)
        path = cache.entry_path("lib", "1", "ab" * 16)
        doc = json.loads(path.read_text())
        doc["md5"] = "ee" * 16
        path.write_text(json.dumps(doc))
        assert cache.get("lib", "1", "ab" * 16) is None
        assert cache.stats.corrupt == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(20):
            cache.put("lib", "1", f"{i:032x}", list(range(i)))
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        md5 = "ab" * 16
        path = cache.entry_path("virustotal", "3", md5)
        assert path == tmp_path / "virustotal" / "3" / "ab" / f"{md5}.json"

    def test_stats_accounting(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("a", "1", "11" * 16, 1)
        cache.get("a", "1", "11" * 16)
        cache.get("a", "1", "22" * 16)
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        }
        assert cache.stats.lookups == 2


class TestEngineMap:
    def test_serial_parallel_same_order(self):
        items = list(range(200))
        serial = AnalysisEngine(workers=1).map(items, lambda x: x * x)
        parallel = AnalysisEngine(workers=4).map(items, lambda x: x * x)
        assert serial == parallel == [x * x for x in items]

    def test_single_item_stays_serial(self):
        engine = AnalysisEngine(workers=4)
        assert engine.map([3], lambda x: x + 1) == [4]
        assert engine.parallel_batches == 0

    def test_parallel_batches_counted(self):
        engine = AnalysisEngine(workers=4)
        engine.map([1, 2, 3], lambda x: x)
        assert engine.parallel_batches == 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            AnalysisEngine(workers=0)

    def test_stats_line(self, tmp_path):
        assert "cache off" in AnalysisEngine().stats_line()
        engine = AnalysisEngine(cache=ArtifactCache(tmp_path))
        assert "0 hits / 0 misses" in engine.stats_line()


class TestMapUnitsCached:
    def _units(self, n=6):
        return [
            _unit_like(make_parsed(package=f"com.unit{i}", signer="ab" * 8))
            for i in range(n)
        ] + [_unit_like(None)]

    def test_apkless_unit_yields_none(self):
        engine = AnalysisEngine()
        out = engine.map_units_cached(
            "t", "1", [_unit_like(None)],
            compute=lambda apk: 1, encode=lambda v: v, decode=lambda p: p,
        )
        assert out == [None]

    def test_second_run_computes_nothing(self, tmp_path):
        calls = []

        def compute(apk):
            calls.append(apk.md5)
            return apk.manifest.version_code

        units = self._units()
        for run in range(2):
            engine = AnalysisEngine(cache=ArtifactCache(tmp_path))
            out = engine.map_units_cached(
                "vc", "1", units,
                compute=compute, encode=lambda v: v, decode=lambda p: int(p),
            )
            assert out[:-1] == [3] * 6 and out[-1] is None
        assert len(calls) == 6  # first run only
        assert engine.cache.stats.hits == 6
        assert engine.cache.stats.misses == 0

    def test_decode_failure_falls_back_to_compute(self, tmp_path):
        units = self._units(1)[:1]
        first = AnalysisEngine(cache=ArtifactCache(tmp_path))
        out = first.map_units_cached(
            "t", "1", units,
            compute=lambda apk: {"k": 1},
            encode=lambda v: v,
            decode=lambda p: dict(p),
        )
        assert out == [{"k": 1}]
        assert first.cache.stats.stores == 1
        # A decoder that rejects the stored payload counts as corruption
        # and falls through to recompute.
        second = AnalysisEngine(cache=ArtifactCache(tmp_path))
        out = second.map_units_cached(
            "t", "1", units,
            compute=lambda apk: "recomputed",
            encode=lambda v: {"v": v},
            decode=lambda p: p["missing"],  # KeyError on the old payload
        )
        assert out == ["recomputed"]
        assert second.cache.stats.corrupt == 1
        assert second.cache.stats.hits == 0
        assert second.cache.stats.misses == 1

    def test_no_cache_recomputes(self):
        calls = []
        units = self._units(2)[:2]
        engine = AnalysisEngine()
        for _ in range(2):
            engine.map_units_cached(
                "t", "1", units,
                compute=lambda apk: calls.append(1), encode=lambda v: v,
                decode=lambda p: p,
            )
        assert len(calls) == 4


class TestAnalyzersThroughEngine:
    def _units(self):
        from repro.analysis.corpus import build_units
        from repro.crawler.snapshot import Snapshot

        snap = Snapshot("t")
        for i in range(12):
            snap.add(make_record(
                market_id="tencent", package=f"com.app{i}",
                apk=make_parsed(package=f"com.app{i}", signer="ab" * 8,
                                permissions=("INTERNET", "READ_SMS", "CAMERA")),
            ))
        return build_units(snap)

    def test_scan_units_serial_equals_parallel(self):
        units = self._units()
        service = VirusTotalService()
        serial = scan_units(units, service, engine=AnalysisEngine(workers=1))
        parallel = scan_units(units, VirusTotalService(),
                              engine=AnalysisEngine(workers=4))
        assert serial.reports.keys() == parallel.reports.keys()
        assert {k: v.detections for k, v in serial.reports.items()} == {
            k: v.detections for k, v in parallel.reports.items()
        }

    def test_scan_units_warm_cache_identical(self, tmp_path):
        units = self._units()
        cold_engine = AnalysisEngine(cache=ArtifactCache(tmp_path))
        cold = scan_units(units, VirusTotalService(), engine=cold_engine)
        warm_engine = AnalysisEngine(cache=ArtifactCache(tmp_path))
        warm = scan_units(units, VirusTotalService(), engine=warm_engine)
        assert warm_engine.cache.stats.misses == 0
        assert warm_engine.cache.stats.hits == len(units)
        assert {k: v.detections for k, v in cold.reports.items()} == {
            k: v.detections for k, v in warm.reports.items()
        }

    def test_custom_vt_roster_gets_own_cache_namespace(self):
        custom = VirusTotalService(engines=default_engines(10))
        assert custom.cache_version != VirusTotalService.cache_version
        assert custom.cache_version.startswith("custom-")

    def test_custom_permission_spec_bypasses_cache(self, tmp_path):
        from repro.android.permissions import PermissionSpec

        units = self._units()
        cache = ArtifactCache(tmp_path)
        engine = AnalysisEngine(cache=cache)
        spec = PermissionSpec(feature_permission={}, permission_features={})
        analyze_overprivilege(units, spec=spec, engine=engine)
        assert cache.stats.lookups == 0
        assert cache.stats.stores == 0

    def test_overprivilege_cached_roundtrip(self, tmp_path):
        units = self._units()
        first = analyze_overprivilege(
            units, engine=AnalysisEngine(cache=ArtifactCache(tmp_path)))
        second = analyze_overprivilege(
            units, engine=AnalysisEngine(cache=ArtifactCache(tmp_path)))
        assert first.unused == second.unused


def _clone_result(study, engine=None):
    """A fresh StudyResult over the same crawl (no re-crawl needed)."""
    return StudyResult(
        config=study.config,
        world=study.world,
        stores=study.stores,
        servers=study.servers,
        clock=study.clock,
        snapshot=study.snapshot,
        presence=study.presence,
        removal_outcome=study.removal_outcome,
        second_snapshot=study.second_snapshot,
        update_outcome=study.update_outcome,
        engine=engine,
    )


class TestRunAllDeterminism:
    def test_parallel_and_cached_digests_match_serial(self, study, tmp_path):
        serial = digest_reports(run_all(_clone_result(study)))

        parallel_result = _clone_result(study, engine=AnalysisEngine(workers=8))
        parallel = digest_reports(run_all(parallel_result))
        assert parallel == serial

        cold_result = _clone_result(
            study, engine=AnalysisEngine(cache=ArtifactCache(tmp_path)))
        cold = digest_reports(run_all(cold_result))
        assert cold_result.engine.cache.stats.stores > 0
        assert cold == serial

        warm_result = _clone_result(
            study,
            engine=AnalysisEngine(workers=4, cache=ArtifactCache(tmp_path)),
        )
        warm = digest_reports(run_all(warm_result))
        assert warm_result.engine.cache.stats.hits > 0
        assert warm_result.engine.cache.stats.misses == 0
        assert warm == serial

    def test_materialize_idempotent(self, study):
        result = _clone_result(study)
        result.materialize()
        vt = result.vt_scan
        result.materialize()
        assert result.vt_scan is vt
