"""Tests for fake-app detection on crafted corpora."""

import pytest

from repro.analysis.corpus import build_units
from repro.analysis.fake import detect_fakes, name_cluster_sizes
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


def _record(package, name, signer, downloads, market="tencent",
            install_range=None):
    return make_record(
        market_id=market, package=package, app_name=name,
        downloads=downloads, install_range=install_range,
        apk=make_parsed(package=package, signer=signer),
    )


def _official_and_fakes(n_fakes=2, name="Super Messenger"):
    snap = Snapshot("t")
    snap.add(_record("com.official", name, "0" * 16, 5_000_000,
                     market="google_play"))
    for i in range(n_fakes):
        snap.add(_record(f"com.fake{i}", name, f"{i + 1:016x}", 200 + i))
    return snap


class TestDetectFakes:
    def test_classic_cluster(self):
        analysis = detect_fakes(build_units(_official_and_fakes()))
        assert len(analysis.fake_units) == 2
        assert all(
            official == ("com.official", "0" * 16)
            for official in analysis.official_of.values()
        )

    def test_no_popular_anchor_no_fakes(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", "Some App", "0" * 16, 5000))
        snap.add(_record("com.b", "Some App", "1" * 16, 100))
        assert not detect_fakes(build_units(snap)).fake_units

    def test_common_names_excluded(self):
        snap = Snapshot("t")
        # Many unrelated packages share a generic name; one is popular.
        for i in range(10):
            snap.add(_record(f"com.flash{i}", "Flashlight", f"{i:016x}",
                             5_000_000 if i == 0 else 50))
        assert not detect_fakes(build_units(snap)).fake_units

    def test_same_developer_variants_excluded(self):
        # The paper's example: Sogou Map phone and pad variants share the
        # developer signature.
        snap = Snapshot("t")
        snap.add(_record("com.sogou.maps", "Sogou Map", "0" * 16, 5_000_000))
        snap.add(_record("com.sogou.maps.pad", "Sogou Map", "0" * 16, 800))
        assert not detect_fakes(build_units(snap)).fake_units

    def test_popular_same_name_not_fake(self):
        snap = Snapshot("t")
        snap.add(_record("com.official", "Big App", "0" * 16, 5_000_000))
        snap.add(_record("com.rival", "Big App", "1" * 16, 2_000_000))
        assert not detect_fakes(build_units(snap)).fake_units

    def test_large_cluster_excluded(self):
        snap = Snapshot("t")
        snap.add(_record("com.official", "Niche App", "0" * 16, 5_000_000))
        for i in range(5):
            snap.add(_record(f"com.fake{i}", "Niche App", f"{i + 1:016x}", 100))
        # 6 distinct packages >= MAX_CLUSTER_SIZE: too noisy to call.
        assert not detect_fakes(build_units(snap)).fake_units

    def test_gp_install_range_anchor(self):
        snap = Snapshot("t")
        snap.add(_record("com.official", "Range App", "0" * 16, None,
                         market="google_play",
                         install_range=(1_000_000, 10_000_000)))
        snap.add(_record("com.fake", "Range App", "1" * 16, 100))
        assert detect_fakes(build_units(snap)).fake_units

    def test_market_rates(self):
        snap = _official_and_fakes(n_fakes=1)
        snap.add(_record("com.clean", "Other App", "9" * 16, 100))
        rates = detect_fakes(build_units(snap)).market_rates(snap)
        assert rates["tencent"] == pytest.approx(0.5)
        assert rates["google_play"] == 0.0


class TestNameClusters:
    def test_sizes(self):
        snap = _official_and_fakes(n_fakes=2)
        snap.add(_record("com.x", "Unique App", "9" * 16, 10))
        sizes = name_cluster_sizes(build_units(snap))
        assert sorted(sizes) == [1, 3]
