"""Tests for the Section 5.3 identity study."""

from repro.analysis.identity import study_identity
from repro.apk.archive import parse_apk, serialize_apk
from repro.apk.models import ChannelFile
from repro.apk.obfuscation import JiaguObfuscator
from repro.crawler.snapshot import Snapshot

from conftest import build_apk, make_record


def _record(market, apk_model):
    parsed = parse_apk(serialize_apk(apk_model))
    return make_record(
        market_id=market,
        package=parsed.manifest.package,
        version_code=parsed.manifest.version_code,
        apk=parsed,
    )


class TestIdentityStudy:
    def test_channel_file_divergence_explained(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk(
            meta_inf=(ChannelFile("META-INF/txchannel", "tencent"),))))
        snap.add(_record("baidu", build_apk(
            meta_inf=(ChannelFile("META-INF/bdchannel", "baidu"),))))
        study = study_identity(snap)
        assert study.identity_groups == 1
        assert study.md5_divergent_groups == 1
        assert study.channel_only_groups == 1
        assert study.explained_share == 1.0

    def test_packer_divergence_explained(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk()))
        snap.add(_record("market360", JiaguObfuscator().obfuscate(build_apk())))
        study = study_identity(snap)
        assert study.md5_divergent_groups == 1
        assert study.packer_groups == 1

    def test_identical_blobs_not_divergent(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk()))
        snap.add(_record("baidu", build_apk()))
        study = study_identity(snap)
        assert study.identity_groups == 1
        assert study.md5_divergent_groups == 0
        assert study.explained_share == 1.0

    def test_single_store_apps_ignored(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk()))
        study = study_identity(snap)
        assert study.identity_groups == 0
        assert study.divergence_share == 0.0

    def test_different_versions_not_grouped(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk(version_code=1)))
        snap.add(_record("baidu", build_apk(version_code=2)))
        assert study_identity(snap).identity_groups == 0

    def test_examples_capture_kind(self):
        snap = Snapshot("t")
        snap.add(_record("tencent", build_apk(
            meta_inf=(ChannelFile("META-INF/txchannel", "tencent"),))))
        snap.add(_record("baidu", build_apk(
            meta_inf=(ChannelFile("META-INF/bdchannel", "baidu"),))))
        study = study_identity(snap)
        assert study.examples[0]["kind"] == "channel file"
        assert study.examples[0]["md5_count"] == 2
