"""Tests for LibRadar-style library detection on crafted corpora."""

import pytest

from repro.analysis.corpus import build_units
from repro.analysis.libraries import LibraryDetector, market_tpl_stats
from repro.apk.models import CodePackage
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record

LIB_FEATURES = {900: 3, 901: 1, 902: 5}
OTHER_LIB_FEATURES = {800: 2, 801: 2}


def _app(i, with_lib=True, lib_name="com.sharedlib", lib_features=None,
         market="tencent"):
    own = CodePackage(f"com.app{i}", {i + 1: 2, i + 50: 1}, (i * 10, i * 10 + 1))
    packages = [own]
    if with_lib:
        packages.append(
            CodePackage(lib_name, dict(lib_features or LIB_FEATURES), (7000,))
        )
    apk = make_parsed(
        package=f"com.app{i}", packages=tuple(packages),
        signer=f"{i:016x}",
    )
    return make_record(market_id=market, package=f"com.app{i}", apk=apk)


def _corpus(n_with_lib=5, n_without=2):
    snap = Snapshot("t")
    for i in range(n_with_lib):
        snap.add(_app(i, with_lib=True))
    for i in range(n_with_lib, n_with_lib + n_without):
        snap.add(_app(i, with_lib=False))
    return snap


class TestDetection:
    def test_shared_code_detected_as_library(self):
        units = build_units(_corpus())
        detection = LibraryDetector().fit(units)
        identities = {lib.identity for lib in detection.libraries}
        assert "com.sharedlib" in identities

    def test_own_code_not_detected(self):
        units = build_units(_corpus())
        detection = LibraryDetector().fit(units)
        identities = {lib.identity for lib in detection.libraries}
        assert not any(identity.startswith("com.app") for identity in identities)

    def test_rare_code_not_detected(self):
        snap = Snapshot("t")
        snap.add(_app(0, with_lib=True))
        snap.add(_app(1, with_lib=True))  # only 2 apps: below min_apps=3
        snap.add(_app(2, with_lib=False))
        detection = LibraryDetector().fit(build_units(snap))
        assert not detection.libraries

    def test_unit_library_assignment(self):
        units = build_units(_corpus())
        detection = LibraryDetector().fit(units)
        with_lib = [u for u in units if int(u.package[7:]) < 5]
        without = [u for u in units if int(u.package[7:]) >= 5]
        for unit in with_lib:
            assert "com.sharedlib" in detection.libraries_of(unit)
        for unit in without:
            assert not detection.libraries_of(unit)

    def test_obfuscation_resilient_name_resolution(self):
        snap = Snapshot("t")
        # Three apps carry the library unobfuscated; one is packed and
        # carries the same features under a mangled name.
        for i in range(3):
            snap.add(_app(i, with_lib=True))
        snap.add(_app(9, with_lib=True, lib_name="o.deadbeef01"))
        detection = LibraryDetector().fit(build_units(snap))
        identities = {lib.identity for lib in detection.libraries}
        assert "com.sharedlib" in identities
        assert not any(identity.startswith("o.") for identity in identities)
        packed_unit = next(u for u in build_units(snap) if u.package == "com.app9")
        assert "com.sharedlib" in detection.libraries_of(packed_unit)

    def test_version_grouping(self):
        snap = Snapshot("t")
        for i in range(3):
            snap.add(_app(i, with_lib=True))
        v2 = {**LIB_FEATURES, 903: 2}
        for i in range(3, 6):
            snap.add(_app(i, with_lib=True, lib_features=v2))
        detection = LibraryDetector().fit(build_units(snap))
        shared = next(l for l in detection.libraries if l.identity == "com.sharedlib")
        assert shared.version_count == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LibraryDetector(min_apps=1)


class TestUsageAndStats:
    def test_usage_table(self):
        units = build_units(_corpus(n_with_lib=6, n_without=2))
        detection = LibraryDetector().fit(units)
        table = detection.usage_table(units)
        identity, usage, _ = table[0]
        assert identity == "com.sharedlib"
        assert usage == pytest.approx(6 / 8)

    def test_market_scoped_usage(self):
        snap = Snapshot("t")
        for i in range(4):
            snap.add(_app(i, with_lib=True, market="tencent"))
        for i in range(4, 8):
            snap.add(_app(i, with_lib=False, market="baidu"))
        units = build_units(snap)
        detection = LibraryDetector().fit(units)
        tencent = detection.usage_table(units, markets={"tencent"})
        baidu = detection.usage_table(units, markets={"baidu"})
        assert tencent and tencent[0][1] == 1.0
        assert not baidu  # no library usage there

    def test_market_tpl_stats(self):
        units = build_units(_corpus(n_with_lib=3, n_without=1))
        detection = LibraryDetector().fit(units)
        stats = market_tpl_stats(units, detection)["tencent"]
        assert stats["presence"] == pytest.approx(3 / 4)
        assert stats["avg_count"] == pytest.approx(3 / 4)

    def test_ad_classification_via_knowledge_base(self):
        snap = Snapshot("t")
        for i in range(4):
            snap.add(_app(i, with_lib=True, lib_name="com.google.ads"))
        units = build_units(snap)
        detection = LibraryDetector().fit(units)
        assert detection.is_ad_identity("com.google.ads")
        stats = market_tpl_stats(units, detection)["tencent"]
        assert stats["ad_presence"] == 1.0
