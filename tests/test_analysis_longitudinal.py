"""Tests for longitudinal snapshot comparison."""

import pytest

from repro.analysis.longitudinal import compare_snapshots
from repro.crawler.snapshot import Snapshot

from conftest import make_record


def _snap(entries):
    snap = Snapshot("t")
    for market, package, version in entries:
        snap.add(make_record(market_id=market, package=package,
                             version_code=version))
    return snap


class TestCompareSnapshots:
    def test_removed_and_added(self):
        first = _snap([("tencent", "com.a", 1), ("tencent", "com.b", 1)])
        second = _snap([("tencent", "com.b", 1), ("tencent", "com.c", 1)])
        churn = compare_snapshots(first, second)["tencent"]
        assert churn.removed == 1
        assert churn.added == 1
        assert churn.survivors == 1
        assert churn.removal_share == pytest.approx(0.5)

    def test_upgrades_counted(self):
        first = _snap([("tencent", "com.a", 1), ("tencent", "com.b", 3)])
        second = _snap([("tencent", "com.a", 2), ("tencent", "com.b", 3)])
        churn = compare_snapshots(first, second)["tencent"]
        assert churn.upgraded == 1
        assert churn.upgrade_share == pytest.approx(0.5)

    def test_flagged_removals(self):
        first = _snap([("tencent", "com.mal", 1), ("tencent", "com.ok", 1)])
        second = _snap([("tencent", "com.ok", 1)])
        churn = compare_snapshots(
            first, second, flagged={"tencent": {"com.mal"}}
        )["tencent"]
        assert churn.flagged_total == 1
        assert churn.flagged_removed == 1
        assert churn.flagged_removal_share == 1.0

    def test_dead_market_skipped(self):
        first = _snap([("hiapk", "com.a", 1)])
        second = _snap([("tencent", "com.x", 1)])
        churn = compare_snapshots(first, second)
        assert "hiapk" not in churn

    def test_empty_first_market(self):
        churn = compare_snapshots(Snapshot("a"), _snap([("tencent", "com.a", 1)]))
        assert churn == {}


class TestFullSecondCrawlIntegration:
    @pytest.fixture(scope="class")
    def dual_study(self):
        from repro import Study, StudyConfig

        return Study(
            StudyConfig(seed=9, scale=0.0002, full_second_crawl=True)
        ).run()

    def test_second_snapshot_produced(self, dual_study):
        assert dual_study.second_snapshot is not None
        assert len(dual_study.second_snapshot) > 0

    def test_dead_markets_absent_second_time(self, dual_study):
        markets = set(dual_study.second_snapshot.markets())
        assert "hiapk" not in markets
        assert "oppo" not in markets

    def test_gp_removed_most_flagged(self, dual_study):
        churn = compare_snapshots(
            dual_study.snapshot,
            dual_study.second_snapshot,
            dual_study.flagged_by_market,
        )
        gp = churn["google_play"]
        assert gp.flagged_total > 0
        assert gp.flagged_removal_share > 0.5  # paper: 84%
        assert gp.flagged_removal_share > churn["pconline"].flagged_removal_share

    def test_upgrades_happen(self, dual_study):
        churn = compare_snapshots(dual_study.snapshot, dual_study.second_snapshot)
        assert sum(c.upgraded for c in churn.values()) > 0

    def test_churn_experiment_renders(self, dual_study):
        from repro.experiments import run_experiment

        table = run_experiment("churn", dual_study)
        assert table.rows
        assert "HiApk" not in table.column("market")
