"""Tests for over-privilege analysis."""

import numpy as np
import pytest

from repro.analysis.corpus import build_units
from repro.analysis.permissions import (
    analyze_overprivilege,
    figure11_series,
    market_overprivilege,
)
from repro.android.permissions import platform_spec
from repro.apk.models import CodePackage
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


def _record(package, requested, used_perms, market="tencent"):
    spec = platform_spec()
    rng = np.random.default_rng(hash(package) % 2**31)
    features = {}
    for perm in used_perms:
        features[spec.sample_feature(perm, rng)] = 2
    features[3] = 1  # an unguarded call
    apk = make_parsed(
        package=package,
        permissions=tuple(requested),
        packages=(CodePackage(package, features, (1, 2)),),
        signer=f"{abs(hash(package)) % 10**16:016d}",
    )
    return make_record(market_id=market, package=package, apk=apk)


class TestAnalyze:
    def test_exact_gap(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", ["CAMERA", "SEND_SMS", "INTERNET"],
                         ["CAMERA", "INTERNET"]))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        assert result.unused_of(units[0]) == frozenset({"SEND_SMS"})

    def test_no_gap(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", ["CAMERA"], ["CAMERA"]))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        assert result.unused_of(units[0]) == frozenset()

    def test_library_usage_counts(self):
        # Permissions exercised only by embedded library code are used.
        spec = platform_spec()
        rng = np.random.default_rng(5)
        lib = CodePackage(
            "com.somelib", {spec.sample_feature("READ_PHONE_STATE", rng): 1}, (9,)
        )
        own = CodePackage("com.a", {3: 1}, (1,))
        apk = make_parsed(package="com.a", permissions=("READ_PHONE_STATE",),
                          packages=(own, lib))
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", apk=apk))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        assert result.unused_of(units[0]) == frozenset()

    def test_apkless_units_skipped(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a"))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        assert result.unused_of(units[0]) is None

    def test_top_unused_dangerous(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", ["READ_PHONE_STATE", "CAMERA", "INTERNET"],
                         ["INTERNET"]))
        snap.add(_record("com.b", ["READ_PHONE_STATE", "INTERNET"],
                         ["INTERNET"]))
        result = analyze_overprivilege(build_units(snap))
        top = dict(result.top_unused_dangerous())
        assert top["READ_PHONE_STATE"] == 1.0
        assert top["CAMERA"] == 0.5
        assert "INTERNET" not in top  # not dangerous


class TestMarketStats:
    def test_share_and_histogram(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", ["CAMERA", "SEND_SMS"], ["CAMERA"]))
        snap.add(_record("com.b", ["CAMERA"], ["CAMERA"]))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        stats = market_overprivilege(snap, units, result)["tencent"]
        assert stats["share"] == pytest.approx(0.5)
        assert stats["histogram"][0] == pytest.approx(0.5)
        assert stats["histogram"][1] == pytest.approx(0.5)

    def test_dangerous_request_stats(self):
        from repro.analysis.permissions import dangerous_request_stats

        snap = Snapshot("t")
        snap.add(_record("com.a", ["CAMERA", "SEND_SMS", "INTERNET"],
                         ["CAMERA"], market="tencent"))
        snap.add(_record("com.b", ["INTERNET"], [], market="google_play"))
        units = build_units(snap)
        stats = dangerous_request_stats(units)
        assert stats["tencent"] == pytest.approx(2.0)
        assert stats["google_play"] == pytest.approx(0.0)

    def test_dangerous_request_gap_in_study(self, study):
        from repro.analysis.permissions import dangerous_request_stats
        from repro.markets.profiles import CHINESE_MARKET_IDS, GOOGLE_PLAY

        stats = dangerous_request_stats(study.units)
        cn = sum(stats[m] for m in CHINESE_MARKET_IDS if m in stats) / 16
        # Section 6.3: Chinese-market apps request more dangerous perms.
        assert cn > stats[GOOGLE_PLAY]

    def test_figure11_series(self):
        snap = Snapshot("t")
        snap.add(_record("com.a", ["CAMERA", "SEND_SMS"], ["CAMERA"],
                         market="google_play"))
        snap.add(_record("com.b", ["CAMERA", "SEND_SMS", "READ_SMS"],
                         ["CAMERA"], market="tencent"))
        units = build_units(snap)
        result = analyze_overprivilege(units)
        series = figure11_series(snap, units, result)
        assert len(series["google_play"]) == 11
        assert series["gp_share"] == 1.0
