"""Tests for the Table 6 removal analysis."""

import pytest

from repro.analysis.postanalysis import removal_report


class TestRemovalReport:
    def _flagged(self):
        return {
            "google_play": {"com.a", "com.b", "com.c", "com.d"},
            "tencent": {"com.a", "com.b", "com.x"},
            "pconline": {"com.a"},
            "hiapk": {"com.a"},
        }

    def _presence(self):
        return {
            # GP removed a, b, c; kept d.
            "google_play": {"com.a": False, "com.b": False, "com.c": False,
                            "com.d": True},
            # Tencent removed only com.b.
            "tencent": {"com.a": True, "com.b": False, "com.x": True},
            "pconline": {"com.a": True},
            # hiapk absent: dead at the second crawl.
        }

    def test_removal_shares(self):
        report = removal_report(self._flagged(), self._presence())
        assert report.removal_share["google_play"] == pytest.approx(0.75)
        assert report.removal_share["tencent"] == pytest.approx(1 / 3)
        assert report.removal_share["pconline"] == 0.0

    def test_excluded_markets(self):
        report = removal_report(self._flagged(), self._presence())
        assert report.excluded_markets == ["hiapk"]
        assert "hiapk" not in report.removal_share

    def test_gprm_overlap(self):
        report = removal_report(self._flagged(), self._presence())
        # GPRM = {a, b, c}; tencent flagged {a, b, x} -> overlap {a, b}.
        assert report.gprm_overlap["tencent"] == 2
        assert report.gprm_removed_share["tencent"] == pytest.approx(0.5)
        assert report.gprm_overlap["pconline"] == 1
        assert report.gprm_removed_share["pconline"] == 0.0

    def test_survivor_share(self):
        report = removal_report(self._flagged(), self._presence())
        # Of GPRM {a, b, c}: a survives in tencent and pconline.
        assert report.gprm_survivor_share == pytest.approx(1 / 3)

    def test_empty_flagged_market(self):
        report = removal_report(
            {"google_play": set(), "tencent": set()},
            {"google_play": {}, "tencent": {}},
        )
        assert report.removal_share["tencent"] == 0.0
        assert report.gprm_survivor_share == 0.0
