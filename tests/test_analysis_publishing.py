"""Tests for publishing dynamics analyses."""

import pytest

from repro.analysis.corpus import build_units
from repro.analysis.publishing import (
    developer_market_cdf_counts,
    developer_name_variants,
    developer_stats,
    gp_overlap_share,
    highest_version_shares,
    market_developer_counts,
    single_store_shares,
    versions_per_package,
)
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


def _record(package, signer, market, version_code=3):
    return make_record(
        market_id=market, package=package, version_code=version_code,
        apk=make_parsed(package=package, signer=signer,
                        version_code=version_code),
    )


class TestDeveloperCoverage:
    def _snap(self):
        snap = Snapshot("t")
        # dev A: GP only; dev B: GP + 2 CN; dev C: one CN market.
        snap.add(_record("com.a1", "a" * 16, "google_play"))
        snap.add(_record("com.b1", "b" * 16, "google_play"))
        snap.add(_record("com.b1", "b" * 16, "tencent"))
        snap.add(_record("com.b2", "b" * 16, "baidu"))
        snap.add(_record("com.c1", "c" * 16, "anzhi"))
        return snap

    def test_market_counts(self):
        counts = developer_market_cdf_counts(build_units(self._snap()))
        assert sorted(counts) == [1, 1, 3]

    def test_developer_stats(self):
        stats = developer_stats(build_units(self._snap()))
        assert stats["developers"] == 3
        assert stats["gp_share"] == pytest.approx(2 / 3)
        assert stats["chinese_only_share"] == pytest.approx(1 / 3)
        assert stats["gp_exclusive_share"] == pytest.approx(1 / 2)
        assert stats["single_chinese_store_share"] == pytest.approx(1 / 3)

    def test_market_developer_counts(self):
        stats = market_developer_counts(build_units(self._snap()))
        assert stats["google_play"]["developers"] == 2
        # dev A publishes only in GP: unique there.
        assert stats["google_play"]["unique_share"] == pytest.approx(0.5)
        assert stats["anzhi"]["unique_share"] == 1.0


class TestStoreOverlap:
    def _snap(self):
        snap = Snapshot("t")
        snap.add(_record("com.multi", "a" * 16, "google_play"))
        snap.add(_record("com.multi", "a" * 16, "tencent"))
        snap.add(_record("com.single", "b" * 16, "tencent"))
        return snap

    def test_single_store_shares(self):
        shares = single_store_shares(self._snap())
        assert shares["tencent"] == pytest.approx(0.5)
        assert shares["google_play"] == 0.0

    def test_gp_overlap(self):
        assert gp_overlap_share(self._snap(), "tencent") == pytest.approx(0.5)

    def test_gp_overlap_empty_market(self):
        assert gp_overlap_share(Snapshot("t"), "tencent") == 0.0


class TestVersions:
    def _snap(self):
        snap = Snapshot("t")
        snap.add(_record("com.lagged", "a" * 16, "google_play", version_code=5))
        snap.add(_record("com.lagged", "a" * 16, "tencent", version_code=3))
        snap.add(_record("com.synced", "b" * 16, "google_play", version_code=2))
        snap.add(_record("com.synced", "b" * 16, "baidu", version_code=2))
        snap.add(_record("com.single", "c" * 16, "baidu", version_code=9))
        return snap

    def test_versions_per_package(self):
        assert sorted(versions_per_package(self._snap())) == [1, 1, 2]

    def test_highest_version_shares(self):
        shares = highest_version_shares(self._snap())
        assert shares["google_play"] == 1.0
        assert shares["tencent"] == 0.0  # its only multi-store app lags
        assert shares["baidu"] == 1.0  # single-store app excluded

    def test_market_without_multistore_apps(self):
        snap = Snapshot("t")
        snap.add(_record("com.solo", "a" * 16, "liqu"))
        assert highest_version_shares(snap)["liqu"] == 1.0


class TestNameVariants:
    def test_multi_name_signer_detected(self):
        snap = Snapshot("t")
        record_a = _record("com.a", "a" * 16, "tencent")
        record_a.developer_name = "FooSoft Co., Ltd."
        record_b = _record("com.a", "a" * 16, "baidu")
        record_b.developer_name = "FooSoft Technology"
        record_c = _record("com.b", "b" * 16, "tencent")
        record_c.developer_name = "BarWorks"
        for r in (record_a, record_b, record_c):
            snap.add(r)
        stats = developer_name_variants(build_units(snap))
        assert stats["signers"] == 2
        assert stats["multi_name_share"] == pytest.approx(0.5)
        assert stats["max_variants"] == 2

    def test_empty(self):
        assert developer_name_variants([])["signers"] == 0.0

    def test_session_study_has_variants(self, study):
        stats = developer_name_variants(study.units)
        # Footnote 11: some signers appear under multiple display names.
        assert stats["multi_name_share"] > 0.0
