"""Tests for the Figure 13 radar normalization."""

import pytest

from repro.analysis.radar import RADAR_DIMENSIONS, RADAR_MARKETS, radar_series


class TestRadarSeries:
    def test_inverted_dimensions(self):
        raw = {"malware_resistance": {
            "google_play": 0.02, "tencent": 0.11, "pconline": 0.24,
            "huawei": 0.05, "lenovo": 0.07,
        }}
        series = radar_series(raw)
        assert series["google_play"]["malware_resistance"] == 100.0
        assert series["pconline"]["malware_resistance"] == 0.0
        assert 0 < series["tencent"]["malware_resistance"] < 100

    def test_higher_is_better_dimensions(self):
        raw = {"app_ratings": {
            "google_play": 4.2, "tencent": 3.0, "pconline": 2.9,
            "huawei": 3.8, "lenovo": 3.5,
        }}
        series = radar_series(raw)
        assert series["google_play"]["app_ratings"] == 100.0
        assert series["pconline"]["app_ratings"] == 0.0

    def test_missing_values_zeroed(self):
        raw = {"malware_removal": {
            "google_play": 0.84, "tencent": 0.09, "pconline": None,
            "huawei": 0.27, "lenovo": 0.23,
        }}
        series = radar_series(raw)
        assert series["pconline"]["malware_removal"] == 0.0

    def test_constant_dimension(self):
        raw = {"app_ratings": {m: 3.0 for m in RADAR_MARKETS}}
        series = radar_series(raw)
        assert all(series[m]["app_ratings"] == 50.0 for m in RADAR_MARKETS)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            radar_series({"blockchain": {m: 1.0 for m in RADAR_MARKETS}})

    def test_all_dimensions_known(self):
        assert set(RADAR_DIMENSIONS) == {
            "malware_resistance", "fake_resistance", "clone_resistance",
            "app_ratings", "catalog_freshness", "malware_removal",
        }
