"""Tests for rating analysis."""

import pytest

from repro.analysis.ratings import (
    default_rating_spike_share,
    high_rating_share,
    rating_cdf,
    unrated_share,
    unrated_low_download_share,
)
from repro.crawler.snapshot import Snapshot

from conftest import make_record


def _snap(ratings, market="tencent", downloads=None):
    snap = Snapshot("t")
    for i, rating in enumerate(ratings):
        snap.add(
            make_record(
                market_id=market,
                package=f"com.app{i}",
                rating=rating,
                downloads=(downloads[i] if downloads else 100),
            )
        )
    return snap


class TestRatingStats:
    def test_unrated_share(self):
        snap = _snap([0.0, 0.0, 4.5, 3.0])
        assert unrated_share(snap, "tencent") == 0.5

    def test_high_rating_share(self):
        snap = _snap([4.5, 4.1, 3.9, 0.0])
        assert high_rating_share(snap, "tencent") == 0.5

    def test_default3_spike(self):
        snap = _snap([3.0, 3.0, 2.7, 4.0, 0.0])
        assert default_rating_spike_share(snap, "tencent") == pytest.approx(3 / 5)

    def test_empty_market(self):
        assert unrated_share(Snapshot("t"), "x") == 0.0

    def test_cdf_monotone(self):
        xs, cdf = rating_cdf(_snap([0.0, 2.0, 4.0, 5.0]), "tencent")
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0
        assert cdf[0] == pytest.approx(0.25)  # the unrated mass at 0

    def test_unrated_low_download_share(self):
        snap = _snap([0.0, 0.0, 4.0], downloads=[50, 5000, 100])
        assert unrated_low_download_share(snap, "tencent") == 0.5
