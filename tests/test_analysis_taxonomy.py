"""Tests for category consolidation."""

from repro.analysis.taxonomy import (
    category_distribution,
    category_distributions,
    consolidate_label,
)
from repro.crawler.snapshot import Snapshot
from repro.markets.categories import CANONICAL_CATEGORIES, OTHER_CATEGORY

from conftest import make_record


class TestConsolidateLabel:
    def test_canonical_passthrough(self):
        assert consolidate_label("Game") == "Game"

    def test_aliases(self):
        assert consolidate_label("Casual Games") == "Game"
        assert consolidate_label("Themes") == "Personalization"
        assert consolidate_label("Input Method") == "InputMethods"

    def test_null_labels(self):
        assert consolidate_label("") == OTHER_CATEGORY
        assert consolidate_label("102229") == OTHER_CATEGORY
        assert consolidate_label("Unclassified") == OTHER_CATEGORY

    def test_unknown_label(self):
        assert consolidate_label("Quantum Chromodynamics") == OTHER_CATEGORY

    def test_whitespace_tolerated(self):
        assert consolidate_label("  Game ") == "Game"


class TestDistribution:
    def test_shares_sum_to_one(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", category="Games"))
        snap.add(make_record(package="com.b", category="Tools"))
        snap.add(make_record(package="com.c", category="NULL"))
        dist = category_distribution(snap, "tencent")
        assert abs(sum(dist.values()) - 1.0) < 1e-9
        assert dist["Game"] == dist["Tools"] == dist[OTHER_CATEGORY]

    def test_empty_market(self):
        dist = category_distribution(Snapshot("t"), "tencent")
        assert all(v == 0.0 for v in dist.values())
        assert set(dist) == set(CANONICAL_CATEGORIES)

    def test_matrix_covers_markets(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="tencent"))
        snap.add(make_record(market_id="baidu"))
        assert set(category_distributions(snap)) == {"baidu", "tencent"}
