"""Tests for category-mix similarity (Figure 1's qualitative claim)."""

import pytest

from repro.analysis.taxonomy import category_similarity, similarity_to_google_play
from repro.crawler.snapshot import Snapshot

from conftest import make_record


class TestCategorySimilarity:
    def test_identical_distributions(self):
        dist = {"Game": 0.5, "Tools": 0.5}
        assert category_similarity(dist, dist) == pytest.approx(1.0)

    def test_orthogonal_distributions(self):
        a = {"Game": 1.0}
        b = {"Tools": 1.0}
        assert category_similarity(a, b) == pytest.approx(0.0)

    def test_other_ignored(self):
        a = {"Game": 0.5, "Null/Other": 0.5}
        b = {"Game": 0.5, "Null/Other": 0.0}
        assert category_similarity(a, b) == pytest.approx(1.0)
        assert category_similarity(a, b, ignore_other=False) < 1.0

    def test_empty(self):
        assert category_similarity({}, {"Game": 1.0}) == 0.0

    def test_snapshot_helper(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="google_play", package="com.a",
                             category="Games"))
        snap.add(make_record(market_id="tencent", package="com.b",
                             category="Casual Games"))
        snap.add(make_record(market_id="huawei", package="com.c",
                             category="Utilities"))
        sims = similarity_to_google_play(snap)
        assert sims["tencent"] == pytest.approx(1.0)
        assert sims["huawei"] == pytest.approx(0.0)
        assert "google_play" not in sims

    def test_session_study_vendor_divergence(self, study):
        sims = similarity_to_google_play(study.snapshot)
        web_stores = [sims[m] for m in ("tencent", "baidu", "pp25")]
        vendor_stores = [sims[m] for m in ("meizu", "huawei", "lenovo")]
        # Section 4.1: vendor stores diverge from Google Play's mix.
        assert min(web_stores) > max(vendor_stores) - 0.1
        assert sum(web_stores) / 3 > sum(vendor_stores) / 3
