"""Tests for the simulated VirusTotal service."""

import pytest

from repro.analysis.virustotal import VirusTotalService, default_engines
from repro.apk.models import CodePackage
from repro.apk.obfuscation import JiaguObfuscator
from repro.apk.archive import parse_apk, serialize_apk
from repro.ecosystem.threats import payload_code

from conftest import build_apk, make_parsed


@pytest.fixture(scope="module")
def service():
    return VirusTotalService()


def _infected(family, variant=0, package="com.victim.app"):
    payload = payload_code(family, variant)
    own = CodePackage(package, {i: 8 for i in range(1, 40)}, tuple(range(50)))
    return make_parsed(package=package, packages=(own, payload))


class TestEngines:
    def test_default_roster(self):
        engines = default_engines()
        assert len(engines) == 60
        tiers = {e.tier for e in engines}
        assert tiers == {"strong", "medium", "weak"}
        assert len({e.name for e in engines}) == 60

    def test_bad_tier_rejected(self):
        from repro.analysis.virustotal import EngineProfile

        with pytest.raises(ValueError):
            EngineProfile("X", "ultra", "dot")


class TestScanning:
    def test_clean_app_rarely_flagged(self, service):
        report = service.scan(make_parsed())
        assert report.av_rank <= 2  # at most stray weak-engine FPs

    def test_high_profile_family_high_rank(self, service):
        report = service.scan(_infected("ramnit"))
        assert report.av_rank >= 35  # paper's Table 5: 44-48 of ~60

    def test_eicar_high_rank(self, service):
        report = service.scan(_infected("eicar"))
        assert report.av_rank >= 35

    def test_adware_family_mid_rank(self, service):
        report = service.scan(_infected("kuguo"))
        assert 8 <= report.av_rank <= 25

    def test_trojan_between_adware_and_high_profile(self, service):
        adware = service.scan(_infected("kuguo")).av_rank
        trojan = service.scan(_infected("smsreg")).av_rank
        high = service.scan(_infected("ramnit")).av_rank
        assert adware < high and trojan < high

    def test_deterministic(self):
        a = VirusTotalService().scan(_infected("kuguo", 3))
        b = VirusTotalService().scan(_infected("kuguo", 3))
        assert a.detections == b.detections

    def test_cached_by_md5(self, service):
        apk = _infected("dowgin", 1)
        assert service.scan(apk) is service.scan(apk)

    def test_grayware_low_rank_nonzero(self, service):
        from repro.ecosystem.libraries import default_catalog

        catalog = default_catalog()
        lib = catalog.get("com.kuguo.ad")
        code = catalog.version_code(lib.package, 0).as_code_package()
        own = CodePackage("com.host.app", {i: 8 for i in range(1, 40)},
                          tuple(range(50)))
        ranks = []
        for i in range(6):
            apk = make_parsed(package=f"com.host{i}.app",
                              packages=(own, code))
            ranks.append(service.scan(apk).av_rank)
        assert max(ranks) >= 1  # weak engines flag the aggressive SDK
        assert max(ranks) < 10  # but never into malware territory

    def test_jiagu_heuristic(self, service):
        # Packed clean apps occasionally attract weak-engine jiagu flags.
        flagged = 0
        for i in range(60):
            apk = build_apk(package=f"com.packed{i}.app")
            packed = parse_apk(serialize_apk(JiaguObfuscator().obfuscate(apk)))
            report = service.scan(packed)
            if report.av_rank:
                flagged += 1
                assert report.av_rank < 10
        assert 0 < flagged < 30  # ~15% of packed apps

    def test_labels_vendor_specific(self, service):
        report = service.scan(_infected("ramnit"))
        labels = set(report.labels())
        assert len(labels) > 1  # different engines, different formats

    def test_alias_table_exposed(self, service):
        aliases = service.family_aliases()
        assert "kuguo" in aliases and "kugou" in aliases["kuguo"]
