"""Tests for the platform permission specification."""

import numpy as np

from repro.android.permissions import (
    ALL_PERMISSIONS,
    DANGEROUS_PERMISSIONS,
    platform_spec,
)
from repro.apk.models import API_FEATURE_RANGE


class TestPlatformSpec:
    def test_singleton(self):
        assert platform_spec() is platform_spec()

    def test_every_permission_has_features(self):
        spec = platform_spec()
        for perm in ALL_PERMISSIONS:
            assert spec.permission_features[perm], perm

    def test_feature_map_consistent(self):
        spec = platform_spec()
        for fid, perm in spec.feature_permission.items():
            assert fid in spec.permission_features[perm]

    def test_permissions_disjoint(self):
        spec = platform_spec()
        seen = set()
        for perm, features in spec.permission_features.items():
            assert not (seen & features), f"{perm} overlaps another permission"
            seen |= features

    def test_unguarded_space_exists(self):
        spec = platform_spec()
        api_lo, api_hi = API_FEATURE_RANGE
        guarded = set(spec.feature_permission)
        lower_half = set(range(api_lo, api_lo + (api_hi - api_lo) // 2))
        assert not (guarded & lower_half)

    def test_permissions_for(self):
        spec = platform_spec()
        perm = DANGEROUS_PERMISSIONS[0]
        fid = next(iter(spec.permission_features[perm]))
        assert spec.permissions_for([fid]) == {perm}
        assert spec.permissions_for([0]) == frozenset()

    def test_sample_feature_guarded_by_permission(self):
        spec = platform_spec()
        rng = np.random.default_rng(3)
        for perm in ("CAMERA", "SEND_SMS", "INTERNET"):
            for _ in range(5):
                fid = spec.sample_feature(perm, rng)
                assert spec.feature_permission[fid] == perm

    def test_is_dangerous(self):
        spec = platform_spec()
        assert spec.is_dangerous("READ_PHONE_STATE")
        assert not spec.is_dangerous("INTERNET")

    def test_dangerous_have_intent_or_provider_features(self):
        from repro.apk.models import INTENT_FEATURE_RANGE, PROVIDER_FEATURE_RANGE

        spec = platform_spec()
        for perm in DANGEROUS_PERMISSIONS:
            features = spec.permission_features[perm]
            non_api = [
                f for f in features
                if f >= INTENT_FEATURE_RANGE[0]
            ]
            assert non_api, f"{perm} lacks intent/provider entries"
