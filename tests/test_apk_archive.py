"""Tests for APK serialization/parsing, including property-based roundtrips."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.archive import MAGIC, ApkParseError, parse_apk, serialize_apk
from repro.apk.models import Apk, ChannelFile, CodePackage, FEATURE_SPACE, Manifest

from conftest import make_apk_bytes


class TestRoundtrip:
    def test_manifest_preserved(self):
        parsed = parse_apk(make_apk_bytes(package="com.a.b", version_code=9))
        assert parsed.manifest.package == "com.a.b"
        assert parsed.manifest.version_code == 9

    def test_signature_preserved(self):
        parsed = parse_apk(make_apk_bytes(signer="cafe000000000001"))
        assert parsed.signer_fingerprint == "cafe000000000001"

    def test_packages_preserved(self):
        pkgs = (
            CodePackage("com.a", {1: 2, 9: 4}, (11, 12)),
            CodePackage("com.lib", {3: 1}, (21,)),
        )
        parsed = parse_apk(make_apk_bytes(packages=pkgs))
        assert parsed.package_names() == ("com.a", "com.lib")
        assert parsed.packages[0].features == {1: 2, 9: 4}
        assert parsed.packages[1].blocks == (21,)

    def test_meta_inf_preserved(self):
        meta = (ChannelFile("META-INF/kgchannel", "baidu"),)
        parsed = parse_apk(make_apk_bytes(meta_inf=meta))
        assert parsed.meta_inf[0].name == "META-INF/kgchannel"
        assert parsed.meta_inf[0].content == "baidu"

    def test_md5_is_md5_of_blob(self):
        blob = make_apk_bytes()
        assert parse_apk(blob).md5 == hashlib.md5(blob).hexdigest()

    def test_size_recorded(self):
        blob = make_apk_bytes()
        assert parse_apk(blob).size_bytes == len(blob)

    def test_serialization_deterministic(self):
        assert make_apk_bytes() == make_apk_bytes()

    def test_different_content_different_md5(self):
        a = parse_apk(make_apk_bytes(version_code=1))
        b = parse_apk(make_apk_bytes(version_code=2))
        assert a.md5 != b.md5

    def test_channel_file_changes_md5_only(self):
        a = parse_apk(make_apk_bytes())
        b = parse_apk(
            make_apk_bytes(meta_inf=(ChannelFile("META-INF/ch", "tencent"),))
        )
        assert a.md5 != b.md5
        assert a.package_digests() == b.package_digests()

    def test_merged_features(self):
        pkgs = (
            CodePackage("com.a", {1: 2}, ()),
            CodePackage("com.b", {1: 3, 2: 1}, ()),
        )
        parsed = parse_apk(make_apk_bytes(packages=pkgs))
        assert parsed.merged_features() == {1: 5, 2: 1}

    def test_identity_key(self):
        parsed = parse_apk(make_apk_bytes(package="com.x", version_code=4))
        assert parsed.identity == ("com.x", 4)


class TestMalformed:
    def test_short_blob(self):
        with pytest.raises(ApkParseError):
            parse_apk(b"xx")

    def test_bad_magic(self):
        blob = bytearray(make_apk_bytes())
        blob[0] = ord("X")
        with pytest.raises(ApkParseError):
            parse_apk(bytes(blob))

    def test_truncated_payload(self):
        blob = make_apk_bytes()
        with pytest.raises(ApkParseError):
            parse_apk(blob[:-4])

    def test_corrupt_payload(self):
        blob = bytearray(make_apk_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(ApkParseError):
            parse_apk(bytes(blob))

    def test_magic_prefix(self):
        assert make_apk_bytes().startswith(MAGIC)


# ---------------------------------------------------------------------------
# property-based roundtrip
# ---------------------------------------------------------------------------

_features = st.dictionaries(
    st.integers(min_value=0, max_value=FEATURE_SPACE - 1),
    st.integers(min_value=1, max_value=50),
    max_size=12,
)
_package_names = st.from_regex(r"[a-z]{2,5}\.[a-z]{2,8}", fullmatch=True)
_code_packages = st.builds(
    CodePackage,
    name=_package_names,
    features=_features,
    blocks=st.tuples(st.integers(min_value=0, max_value=2**32 - 1)),
)


@st.composite
def apks(draw):
    min_sdk = draw(st.integers(min_value=1, max_value=25))
    return Apk(
        manifest=Manifest(
            package=draw(_package_names),
            version_code=draw(st.integers(min_value=0, max_value=10**6)),
            version_name=draw(st.text(min_size=1, max_size=10)),
            min_sdk=min_sdk,
            target_sdk=draw(st.integers(min_value=min_sdk, max_value=30)),
            permissions=tuple(
                draw(st.lists(st.sampled_from(["INTERNET", "CAMERA", "SEND_SMS"]),
                              max_size=3))
            ),
        ),
        packages=tuple(draw(st.lists(_code_packages, min_size=1, max_size=4))),
        signer_fingerprint=draw(st.from_regex(r"[0-9a-f]{16}", fullmatch=True)),
        signer_name=draw(st.text(min_size=1, max_size=20)),
        meta_inf=(),
    )


@settings(max_examples=60, deadline=None)
@given(apks())
def test_roundtrip_property(apk):
    parsed = parse_apk(serialize_apk(apk))
    assert parsed.manifest == apk.manifest
    assert parsed.signer_fingerprint == apk.signer_fingerprint
    assert tuple(p.name for p in parsed.packages) == tuple(p.name for p in apk.packages)
    for original, restored in zip(apk.packages, parsed.packages):
        assert dict(original.features) == dict(restored.features)
        assert tuple(original.blocks) == tuple(restored.blocks)


@settings(max_examples=30, deadline=None)
@given(apks())
def test_digest_stable_under_roundtrip(apk):
    parsed = parse_apk(serialize_apk(apk))
    for original, restored in zip(apk.packages, parsed.packages):
        assert original.feature_digest == restored.feature_digest
