"""Tests for APK model invariants."""

import pytest

from repro.apk.models import Apk, CodePackage, FEATURE_SPACE, Manifest


class TestManifest:
    def test_valid(self):
        m = Manifest("com.a", 1, "1.0", 9, 19)
        assert m.package == "com.a"

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError):
            Manifest("com.a", -1, "1.0", 9, 19)

    def test_target_below_min_rejected(self):
        with pytest.raises(ValueError):
            Manifest("com.a", 1, "1.0", 19, 9)

    def test_min_sdk_positive(self):
        with pytest.raises(ValueError):
            Manifest("com.a", 1, "1.0", 0, 9)


class TestCodePackage:
    def test_feature_space_enforced(self):
        with pytest.raises(ValueError):
            CodePackage("com.a", {FEATURE_SPACE: 1})

    def test_positive_counts_enforced(self):
        with pytest.raises(ValueError):
            CodePackage("com.a", {1: 0})

    def test_digest_ignores_name(self):
        a = CodePackage("com.a", {1: 2, 3: 4})
        b = CodePackage("o.deadbeef", {1: 2, 3: 4})
        assert a.feature_digest == b.feature_digest

    def test_digest_sensitive_to_counts(self):
        a = CodePackage("com.a", {1: 2})
        b = CodePackage("com.a", {1: 3})
        assert a.feature_digest != b.feature_digest

    def test_digest_order_independent(self):
        a = CodePackage("com.a", {1: 2, 5: 1})
        b = CodePackage("com.a", {5: 1, 1: 2})
        assert a.feature_digest == b.feature_digest

    def test_total_features(self):
        assert CodePackage("com.a", {1: 2, 3: 4}).total_features() == 6


class TestApk:
    def test_merged_features_and_names(self):
        apk = Apk(
            manifest=Manifest("com.a", 1, "1.0", 9, 19),
            packages=(
                CodePackage("com.a", {1: 1}),
                CodePackage("com.lib", {1: 2, 7: 3}),
            ),
            signer_fingerprint="ab",
            signer_name="dev",
        )
        assert apk.merged_features() == {1: 3, 7: 3}
        assert apk.package_names() == ("com.a", "com.lib")
