"""Tests for 360 Jiagubao-style packing."""

from repro.apk.obfuscation import JIAGU_STUB_PACKAGE, JiaguObfuscator

from conftest import build_apk


class TestJiaguObfuscator:
    def test_renames_packages(self):
        apk = build_apk()
        packed = JiaguObfuscator().obfuscate(apk)
        renamed = [p.name for p in packed.packages if p.name != JIAGU_STUB_PACKAGE]
        assert all(name.startswith("o.") for name in renamed)

    def test_preserves_feature_digests(self):
        apk = build_apk()
        packed = JiaguObfuscator().obfuscate(apk)
        original_digests = {p.feature_digest for p in apk.packages}
        packed_digests = {p.feature_digest for p in packed.packages}
        assert original_digests <= packed_digests  # stub adds one more

    def test_injects_stub(self):
        packed = JiaguObfuscator().obfuscate(build_apk())
        names = [p.name for p in packed.packages]
        assert JIAGU_STUB_PACKAGE in names

    def test_stub_digest_stable(self):
        a = JiaguObfuscator().obfuscate(build_apk(package="com.x"))
        b = JiaguObfuscator().obfuscate(build_apk(package="com.y"))
        stub_a = [p for p in a.packages if p.name == JIAGU_STUB_PACKAGE][0]
        stub_b = [p for p in b.packages if p.name == JIAGU_STUB_PACKAGE][0]
        assert stub_a.feature_digest == stub_b.feature_digest
        assert stub_a.feature_digest == JiaguObfuscator.stub_digest()

    def test_rename_stable_per_app(self):
        a = JiaguObfuscator().obfuscate(build_apk(package="com.x"))
        b = JiaguObfuscator().obfuscate(build_apk(package="com.x"))
        assert [p.name for p in a.packages] == [p.name for p in b.packages]

    def test_rename_differs_across_apps(self):
        a = JiaguObfuscator().obfuscate(build_apk(package="com.x"))
        b = JiaguObfuscator().obfuscate(build_apk(package="com.y"))
        assert [p.name for p in a.packages] != [p.name for p in b.packages]

    def test_marks_archive(self):
        packed = JiaguObfuscator().obfuscate(build_apk())
        assert packed.obfuscated_by == "360jiagubao"

    def test_input_not_modified(self):
        apk = build_apk()
        names_before = apk.package_names()
        JiaguObfuscator().obfuscate(apk)
        assert apk.package_names() == names_before
        assert apk.obfuscated_by is None
