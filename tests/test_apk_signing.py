"""Tests for signing keys and signature extraction."""

from repro.apk.archive import parse_apk, serialize_apk
from repro.apk.signing import SigningKey, extract_signature

from conftest import build_apk


class TestSigningKey:
    def test_fingerprint_deterministic(self):
        assert SigningKey(1, "a").fingerprint == SigningKey(1, "b").fingerprint

    def test_fingerprint_depends_on_key(self):
        assert SigningKey(1, "a").fingerprint != SigningKey(2, "a").fingerprint

    def test_fingerprint_hex(self):
        fp = SigningKey(7, "dev").fingerprint
        assert len(fp) == 16
        int(fp, 16)  # parses as hex


class TestExtractSignature:
    def test_reads_from_archive(self):
        key = SigningKey(99, "Studio")
        apk = build_apk(signer=key.fingerprint)
        parsed = parse_apk(serialize_apk(apk))
        assert extract_signature(parsed) == key.fingerprint

    def test_clone_has_different_signature(self):
        original = parse_apk(serialize_apk(build_apk(signer=SigningKey(1, "a").fingerprint)))
        clone = parse_apk(serialize_apk(build_apk(signer=SigningKey(2, "b").fingerprint)))
        assert extract_signature(original) != extract_signature(clone)
