"""Paper-shape fidelity tests.

These assert that the *measured* statistics of the session study land on
the paper's qualitative findings — who wins, rough factors, crossovers —
with tolerances appropriate to the small test scale.  Exact side-by-side
numbers are recorded by the benchmark harness in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis.downloads import download_bin_distribution, top_download_share
from repro.analysis.freshness import figure4_series
from repro.analysis.libraries import market_tpl_stats, top_libraries_table
from repro.analysis.malware import av_rank_rates, family_distribution
from repro.analysis.publishing import (
    developer_stats,
    gp_overlap_share,
    highest_version_shares,
    single_store_shares,
)
from repro.analysis.ratings import high_rating_share, unrated_share
from repro.analysis.identity import study_identity
from repro.markets.profiles import (
    ALL_MARKET_IDS,
    CHINESE_MARKET_IDS,
    GOOGLE_PLAY,
    get_profile,
)


class TestDownloadShapes:
    def test_figure2_rows_match_paper(self, study):
        for market in ("tencent", "huawei", "oppo", "pconline"):
            measured = np.asarray(download_bin_distribution(study.snapshot, market))
            target = np.asarray(get_profile(market).download_bin_shares)
            target = target / target.sum()
            assert np.abs(measured - target).max() < 0.12, market

    def test_non_reporting_markets_empty(self, study):
        for market in ("xiaomi", "appchina"):
            assert sum(download_bin_distribution(study.snapshot, market)) == 0.0

    def test_power_law_concentration(self, study):
        # Section 4.2: top 0.1% of apps hold >50% of downloads; Tencent
        # Myapp exceeds 80%.
        share = top_download_share(study.snapshot, "tencent", 0.001)
        assert share is not None and share > 0.6

    def test_concentration_widespread(self, study):
        shares = [
            top_download_share(study.snapshot, m, 0.001)
            for m in ("tencent", "baidu", "huawei", GOOGLE_PLAY, "pp25")
        ]
        shares = [s for s in shares if s is not None]
        assert np.mean(shares) > 0.45  # paper: >50% on average


class TestFreshnessAndApiShapes:
    def test_chinese_markets_staler(self, study):
        series = figure4_series(study.snapshot)
        assert series["chinese_pre2017"] > series["google_play_pre2017"]
        assert series["google_play_recent6mo"] > series["chinese_recent6mo"]
        assert series["chinese_pre2017"] > 0.75  # paper: ~90%

    def test_low_api_gap(self, study):
        from repro.analysis.apilevel import low_api_share

        gp = low_api_share(study.snapshot, GOOGLE_PLAY)
        cn = np.mean([
            low_api_share(study.snapshot, m) for m in CHINESE_MARKET_IDS
        ])
        assert cn > gp  # paper: 63% vs 22%
        assert cn - gp > 0.15


class TestLibraryShapes:
    def test_gp_highest_presence_lowest_count(self, study):
        stats = market_tpl_stats(study.units, study.library_detection)
        gp = stats[GOOGLE_PLAY]
        cn_counts = [stats[m]["avg_count"] for m in CHINESE_MARKET_IDS if m in stats]
        assert gp["presence"] > 0.85
        assert gp["avg_count"] < np.mean(cn_counts)

    def test_360_highest_avg_count(self, study):
        stats = market_tpl_stats(study.units, study.library_detection)
        others = [stats[m]["avg_count"] for m in ALL_MARKET_IDS
                  if m != "market360" and m in stats]
        assert stats["market360"]["avg_count"] > max(others) - 2

    def test_table2_gp_leaders(self, study):
        tops = top_libraries_table(study.units, study.library_detection, top_n=10)
        gp_names = [name for name, _, _ in tops["google_play"]]
        # Paper: gms 66.1% and AdMob 62.1% lead; at test scale their
        # order is within noise, so assert the pair rather than the rank.
        assert set(gp_names[:2]) == {"com.google.android.gms", "com.google.ads"}
        assert "org.apache" in gp_names[:5]

    def test_table2_chinese_specific_libraries(self, study):
        tops = top_libraries_table(study.units, study.library_detection, top_n=12)
        cn_names = [name for name, _, _ in tops["chinese"]]
        assert "com.tencent.mm" in cn_names
        assert "com.umeng" in cn_names
        assert "com.alipay" in cn_names or "com.baidu" in cn_names

    def test_ad_presence_gap(self, study):
        stats = market_tpl_stats(study.units, study.library_detection)
        cn_ad = np.mean([
            stats[m]["ad_presence"] for m in CHINESE_MARKET_IDS if m in stats
        ])
        assert stats[GOOGLE_PLAY]["ad_presence"] > cn_ad  # 70% vs 53%


class TestRatingShapes:
    def test_gp_mostly_rated(self, study):
        assert unrated_share(study.snapshot, GOOGLE_PLAY) < 0.2  # paper: 9.3%
        assert high_rating_share(study.snapshot, GOOGLE_PLAY) > 0.35

    def test_chinese_pattern1(self, study):
        for market in ("tencent", "pp25", "oppo"):
            assert unrated_share(study.snapshot, market) > 0.6  # paper: >80%

    def test_pconline_default3_artifact(self, study):
        from repro.analysis.ratings import default_rating_spike_share

        pco = default_rating_spike_share(study.snapshot, "pconline")
        others = np.mean([
            default_rating_spike_share(study.snapshot, m)
            for m in ("tencent", "baidu", "huawei")
        ])
        assert pco > others + 0.2


class TestPublishingShapes:
    def test_gp_developer_exclusivity(self, study):
        stats = developer_stats(study.units)
        assert 0.4 < stats["gp_exclusive_share"] < 0.75  # paper: 57%
        assert 0.3 < stats["chinese_only_share"] < 0.65  # paper: ~48%

    def test_gp_single_store_share(self, study):
        shares = single_store_shares(study.snapshot)
        assert shares[GOOGLE_PLAY] > 0.6  # paper: 77%

    def test_cn_gp_overlap_window(self, study):
        overlaps = [
            gp_overlap_share(study.snapshot, m)
            for m in ("tencent", "baidu", "wandoujia")
        ]
        # Paper: between 20% and 30% of Chinese-market apps are in GP.
        assert 0.1 < np.mean(overlaps) < 0.45

    def test_figure9_ordering(self, study):
        shares = highest_version_shares(study.snapshot)
        assert shares[GOOGLE_PLAY] > 0.85  # paper: 95.4%
        assert shares[GOOGLE_PLAY] > shares["baidu"]  # paper: 52.9%
        assert shares["baidu"] < 0.8


class TestMisbehaviorShapes:
    def test_table4_gp_cleanest(self, study):
        rates = av_rank_rates(study.snapshot, study.units, study.vt_scan)
        gp10 = rates[GOOGLE_PLAY][10]
        for market in CHINESE_MARKET_IDS:
            assert rates[market][10] >= gp10 * 0.8, market
        assert gp10 < 0.06  # paper: 2.09%

    def test_table4_chinese_malware_prevalent(self, study):
        rates = av_rank_rates(study.snapshot, study.units, study.vt_scan)
        cn10 = [rates[m][10] for m in CHINESE_MARKET_IDS]
        assert np.mean(cn10) > 0.06  # paper: ~10% on average
        assert rates["pconline"][10] > np.mean(cn10)  # worst market

    def test_table4_rates_close_to_paper(self, study):
        rates = av_rank_rates(study.snapshot, study.units, study.vt_scan)
        for market in ALL_MARKET_IDS:
            profile = get_profile(market)
            measured = 100 * rates[market][10]
            assert measured == pytest.approx(
                profile.av10_rate, abs=max(4.0, 0.6 * profile.av10_rate)
            ), market

    def test_huawei_comparable_to_gp(self, study):
        rates = av_rank_rates(study.snapshot, study.units, study.vt_scan)
        assert rates["huawei"][10] < np.mean(
            [rates[m][10] for m in CHINESE_MARKET_IDS]
        )

    def test_figure12_family_leaders(self, study):
        families = family_distribution(study.units, study.vt_scan)
        chinese = families["chinese"]
        assert chinese
        top5 = list(chinese)[:5]
        assert "kuguo" in top5  # paper: 12.69%, the leader

    def test_clone_rates_in_paper_range(self, study):
        cb = study.code_clones.market_rates(study.snapshot)
        values = [cb[m] for m in ALL_MARKET_IDS]
        assert 0.08 < np.mean(values) < 0.30  # paper average: 19.6%
        sb = study.signature_clones.market_rates(study.snapshot)
        assert 0.02 < np.mean([sb[m] for m in ALL_MARKET_IDS]) < 0.15  # 7.2%

    def test_cb_more_common_than_sb(self, study):
        cb = study.code_clones.market_rates(study.snapshot)
        sb = study.signature_clones.market_rates(study.snapshot)
        assert np.mean(list(cb.values())) > np.mean(list(sb.values()))

    def test_fakes_absent_from_non_reporting_markets(self, study):
        rates = study.fakes.market_rates(study.snapshot)
        assert rates["xiaomi"] == 0.0
        assert rates["appchina"] == 0.0

    def test_overprivilege_gap(self, study):
        from repro.analysis.permissions import market_overprivilege

        stats = market_overprivilege(study.snapshot, study.units, study.overprivilege)
        gp = stats[GOOGLE_PLAY]["share"]
        cn = np.mean([stats[m]["share"] for m in CHINESE_MARKET_IDS if m in stats])
        assert cn > gp  # paper: 82% vs 65%
        assert 0.45 < gp < 0.85

    def test_top_unused_permission_is_phone_state(self, study):
        top = study.overprivilege.top_unused_dangerous(top_n=3)
        assert top[0][0] == "READ_PHONE_STATE"  # paper: 52.38%


class TestIdentityShapes:
    def test_divergent_md5_explained(self, study):
        identity = study_identity(study.snapshot)
        assert identity.identity_groups > 0
        assert identity.md5_divergent_groups > 0  # channel files & packing
        assert identity.explained_share > 0.95  # §5.3's conclusion


class TestPostAnalysisShapes:
    def test_gp_removal_dominates(self, study):
        removal = study.removal.removal_share
        gp = removal[GOOGLE_PLAY]
        assert gp > 0.6  # paper: 84%
        for market in removal:
            if market != GOOGLE_PLAY:
                assert removal[market] < gp

    def test_pconline_removes_nothing(self, study):
        assert study.removal.removal_share["pconline"] < 0.1  # paper: 0.01%

    def test_survivors_substantial(self, study):
        # Paper: >70% of GP-removed malware still hosted in China.
        assert study.removal.gprm_survivor_share > 0.35

    def test_excluded_markets(self, study):
        assert study.removal.excluded_markets == ["hiapk", "oppo"]
