"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENT_IDS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 42
        assert args.scale == 0.001
        assert not args.no_apks

    def test_experiment_ids_collected(self):
        args = build_parser().parse_args(["experiment", "table4", "figure9"])
        assert args.ids == ["table4", "figure9"]

    def test_observability_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None
        assert args.metrics_out is None
        assert not args.profile

    def test_observability_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--trace-out", "t.jsonl", "--metrics-out", "m.jsonl",
             "--profile"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.jsonl"
        assert args.profile

    def test_run_report_artifact_paths(self):
        args = build_parser().parse_args(
            ["run-report", "--trace", "t.jsonl", "--metrics", "m.jsonl"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics == "m.jsonl"


class TestCommands:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        listed = out.getvalue().split()
        assert listed == list(EXPERIMENT_IDS)

    def test_markets(self):
        out = io.StringIO()
        assert main(["markets"], out=out) == 0
        text = out.getvalue()
        assert "Google Play" in text
        assert "Tencent Myapp" in text
        assert text.count("\n") >= 18

    def test_run_metadata_only(self):
        out = io.StringIO()
        code = main(["run", "--scale", "0.0002", "--no-apks", "--seed", "5"],
                    out=out)
        assert code == 0
        assert "listings" in out.getvalue()

    def test_experiment_unknown_id(self):
        out = io.StringIO()
        assert main(["experiment", "table99", "--scale", "0.0002"], out=out) == 2

    def test_experiment_renders(self):
        out = io.StringIO()
        code = main(
            ["experiment", "figure9", "--scale", "0.0002", "--no-apks",
             "--seed", "5"],
            out=out,
        )
        assert code == 0
        assert "figure9" in out.getvalue()

    def test_report_writes_file(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "EXP.md"
        code = main(
            ["report", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--output", str(target)],
            out=out,
        )
        assert code == 0
        content = target.read_text()
        assert "## figure9" in content
        assert "## table1" in content


class TestObservabilityCommands:
    def _traced_run(self, tmp_path, extra=()):
        out = io.StringIO()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["run", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--trace-out", str(trace), "--metrics-out", str(metrics),
             *extra],
            out=out,
        )
        return code, out.getvalue(), trace, metrics

    def test_traced_run_writes_artifacts(self, tmp_path):
        from repro.obs.schema import validate_metrics_file, validate_trace_file

        code, text, trace, metrics = self._traced_run(tmp_path)
        assert code == 0
        assert f"wrote {trace}" in text
        assert f"wrote {metrics}" in text
        assert len(validate_trace_file(trace)) > 0
        assert len(validate_metrics_file(metrics)) > 0

    def test_profile_prints_stage_report(self, tmp_path):
        code, text, _, _ = self._traced_run(tmp_path, extra=["--profile"])
        assert code == 0
        assert "stage profile" in text
        assert "critical path" in text

    def test_run_report_renders_campaign_table(self, tmp_path):
        code, _, trace, metrics = self._traced_run(tmp_path)
        assert code == 0
        out = io.StringIO()
        code = main(
            ["run-report", "--trace", str(trace), "--metrics", str(metrics)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "crawl telemetry [first]" in text
        assert "records, campaigns: first" in text
        assert "crawl.campaign" in text

    def test_run_report_requires_an_artifact(self):
        assert main(["run-report"], out=io.StringIO()) == 2

    def test_run_report_rejects_bad_artifact(self, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"kind":"span","name":"x"}\n')
        assert main(["run-report", "--trace", str(bad)], out=io.StringIO()) == 1

    def test_run_report_missing_file_is_an_error(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert main(["run-report", "--trace", str(missing)],
                    out=io.StringIO()) == 1
