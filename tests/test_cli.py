"""Tests for the command-line interface."""

import io
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENT_IDS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 42
        assert args.scale == 0.001
        assert not args.no_apks

    def test_experiment_ids_collected(self):
        args = build_parser().parse_args(["experiment", "table4", "figure9"])
        assert args.ids == ["table4", "figure9"]

    def test_observability_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None
        assert args.metrics_out is None
        assert not args.profile

    def test_observability_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--trace-out", "t.jsonl", "--metrics-out", "m.jsonl",
             "--profile"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.jsonl"
        assert args.profile

    def test_run_report_artifact_paths(self):
        args = build_parser().parse_args(
            ["run-report", "--trace", "t.jsonl", "--metrics", "m.jsonl"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics == "m.jsonl"

    def test_monitor_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert not args.monitor
        assert args.monitor_interval == 1.0
        assert args.stall_budget == 5.0
        assert args.profile_out is None
        assert args.run_meta is None

    def test_monitor_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--monitor", "--monitor-interval", "0.5",
             "--stall-budget", "10", "--profile-out", "p.jsonl",
             "--run-meta", "r.json"]
        )
        assert args.monitor
        assert args.monitor_interval == 0.5
        assert args.stall_budget == 10.0
        assert args.profile_out == "p.jsonl"
        assert args.run_meta == "r.json"

    def test_serving_flags_default_to_fast_path(self):
        args = build_parser().parse_args(["run"])
        assert args.transport == "inprocess"
        assert args.crawl_engine == "thread"
        assert args.pipeline == 1

    def test_serving_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--transport", "socket", "--crawl-engine", "asyncio",
             "--pipeline", "8"]
        )
        assert args.transport == "socket"
        assert args.crawl_engine == "asyncio"
        assert args.pipeline == 8

    def test_transport_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--transport", "carrier-pigeon"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.users == 8
        assert args.requests == 25
        assert args.mix == "search=5,detail=3,download=2"
        assert args.latency_ms == 0.0
        assert args.out is None

    def test_obs_ingest_collects_bench_artifacts(self):
        args = build_parser().parse_args(
            ["obs", "ingest", "--db", "w.sqlite", "--meta", "r.json",
             "--bench", "BENCH_a.json", "--bench", "BENCH_b.json"]
        )
        assert args.obs_command == "ingest"
        assert args.db == "w.sqlite"
        assert args.bench == ["BENCH_a.json", "BENCH_b.json"]

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs", "diff", "a", "b"])
        assert args.db == "warehouse.sqlite"
        assert not args.strict
        args = build_parser().parse_args(["obs", "check"])
        assert args.rules == "slo.toml"
        assert args.run == "-1"
        args = build_parser().parse_args(["obs", "flame", "t.jsonl"])
        assert args.trace == "t.jsonl"
        assert args.out is None


class TestCommands:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        listed = out.getvalue().split()
        assert listed == list(EXPERIMENT_IDS)

    def test_markets(self):
        out = io.StringIO()
        assert main(["markets"], out=out) == 0
        text = out.getvalue()
        assert "Google Play" in text
        assert "Tencent Myapp" in text
        assert text.count("\n") >= 18

    def test_run_metadata_only(self):
        out = io.StringIO()
        code = main(["run", "--scale", "0.0002", "--no-apks", "--seed", "5"],
                    out=out)
        assert code == 0
        assert "listings" in out.getvalue()

    def test_run_over_socket_transport(self):
        out = io.StringIO()
        code = main(
            ["run", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--transport", "socket", "--crawl-engine", "asyncio",
             "--pipeline", "4"],
            out=out,
        )
        assert code == 0
        assert "listings" in out.getvalue()

    def test_loadgen_writes_bench_artifact(self, tmp_path):
        import json

        out = io.StringIO()
        bench = tmp_path / "BENCH_serving.json"
        code = main(
            ["loadgen", "--scale", "0.0002", "--seed", "5", "--users", "4",
             "--requests", "5", "--out", str(bench),
             "--metrics-out", str(tmp_path / "m.jsonl")],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "latency: p50" in text
        doc = json.loads(bench.read_text())
        section = doc["sections"]["loadgen"]
        assert section["requests"] == 20
        assert section["errors"] == 0
        assert (tmp_path / "m.jsonl").read_text().count("\n") > 0

    def test_loadgen_rejects_bad_mix(self):
        out = io.StringIO()
        assert main(["loadgen", "--mix", "search=lots"], out=out) == 2

    def test_experiment_unknown_id(self):
        out = io.StringIO()
        assert main(["experiment", "table99", "--scale", "0.0002"], out=out) == 2

    def test_experiment_renders(self):
        out = io.StringIO()
        code = main(
            ["experiment", "figure9", "--scale", "0.0002", "--no-apks",
             "--seed", "5"],
            out=out,
        )
        assert code == 0
        assert "figure9" in out.getvalue()

    def test_report_writes_file(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "EXP.md"
        code = main(
            ["report", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--output", str(target)],
            out=out,
        )
        assert code == 0
        content = target.read_text()
        assert "## figure9" in content
        assert "## table1" in content


class TestObservabilityCommands:
    def _traced_run(self, tmp_path, extra=()):
        out = io.StringIO()
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["run", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--trace-out", str(trace), "--metrics-out", str(metrics),
             *extra],
            out=out,
        )
        return code, out.getvalue(), trace, metrics

    def test_traced_run_writes_artifacts(self, tmp_path):
        from repro.obs.schema import validate_metrics_file, validate_trace_file

        code, text, trace, metrics = self._traced_run(tmp_path)
        assert code == 0
        assert f"wrote {trace}" in text
        assert f"wrote {metrics}" in text
        assert len(validate_trace_file(trace)) > 0
        assert len(validate_metrics_file(metrics)) > 0

    def test_profile_prints_stage_report(self, tmp_path):
        code, text, _, _ = self._traced_run(tmp_path, extra=["--profile"])
        assert code == 0
        assert "stage profile" in text
        assert "critical path" in text

    def test_run_report_renders_campaign_table(self, tmp_path):
        code, _, trace, metrics = self._traced_run(tmp_path)
        assert code == 0
        out = io.StringIO()
        code = main(
            ["run-report", "--trace", str(trace), "--metrics", str(metrics)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "crawl telemetry [first]" in text
        assert "records, campaigns: first" in text
        assert "crawl.campaign" in text

    def test_run_report_requires_an_artifact(self):
        assert main(["run-report"], out=io.StringIO()) == 2

    def test_run_report_rejects_bad_artifact(self, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"kind":"span","name":"x"}\n')
        assert main(["run-report", "--trace", str(bad)], out=io.StringIO()) == 1

    def test_run_report_missing_file_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["run-report", "--trace", str(missing)],
                    out=io.StringIO()) == 1
        # The error names the artifact and the failure class, not just
        # a bare strerror.
        err = capsys.readouterr().err
        assert str(missing) in err
        assert "FileNotFoundError" in err


class TestObsCommands:
    REPO_SLO = str(Path(__file__).resolve().parents[1] / "slo.toml")

    def _full_run(self, tmp_path, tag="a", seed=5):
        out = io.StringIO()
        paths = {
            kind: tmp_path / f"{kind}-{tag}.jsonl"
            for kind in ("trace", "metrics", "profile")
        }
        meta = tmp_path / f"run-{tag}.json"
        code = main(
            ["run", "--scale", "0.0002", "--no-apks", "--seed", str(seed),
             "--monitor",
             "--trace-out", str(paths["trace"]),
             "--metrics-out", str(paths["metrics"]),
             "--profile-out", str(paths["profile"]),
             "--run-meta", str(meta)],
            out=out,
        )
        assert code == 0, out.getvalue()
        return paths, meta

    def _ingest(self, db, paths, meta):
        out = io.StringIO()
        code = main(
            ["obs", "ingest", "--db", str(db), "--meta", str(meta),
             "--metrics", str(paths["metrics"]),
             "--trace", str(paths["trace"]),
             "--profile", str(paths["profile"])],
            out=out,
        )
        return code, out.getvalue()

    def test_monitored_run_exports_everything(self, tmp_path):
        import json

        paths, meta = self._full_run(tmp_path)
        for path in paths.values():
            assert path.exists()
        manifest = json.loads(meta.read_text())
        assert manifest["schema"] == "repro.run/1"
        assert manifest["seed"] == 5
        assert "snapshot" in manifest["digests"]
        assert manifest["artifacts"]["trace"] == str(paths["trace"])

    def test_ingest_runs_diff_check_end_to_end(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        paths_a, meta_a = self._full_run(tmp_path, tag="a")
        paths_b, meta_b = self._full_run(tmp_path, tag="b")

        code, text = self._ingest(db, paths_a, meta_a)
        assert code == 0 and "ingested" in text
        code, text = self._ingest(db, paths_b, meta_b)
        assert code == 0

        out = io.StringIO()
        assert main(["obs", "runs", "--db", str(db)], out=out) == 0
        assert "study-seed5" in out.getvalue()

        # Two runs of the same seed/config: identical deterministic
        # series, strict diff passes.
        out = io.StringIO()
        code = main(
            ["obs", "diff", "--db", str(db), "--strict", "--", "-2", "-1"],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "clean: all deterministic series match" in out.getvalue()

        out = io.StringIO()
        code = main(
            ["obs", "check", "--db", str(db), "--rules", self.REPO_SLO],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "BREACH" not in out.getvalue()

    def test_reingest_is_a_noop(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        paths, meta = self._full_run(tmp_path)
        assert self._ingest(db, paths, meta)[0] == 0
        code, text = self._ingest(db, paths, meta)
        assert code == 0
        assert "already ingested" in text

    def test_check_exits_nonzero_on_breach(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        paths, meta = self._full_run(tmp_path)
        assert self._ingest(db, paths, meta)[0] == 0
        rules = tmp_path / "slo.toml"
        rules.write_text(
            '[[rule]]\nname = "impossible-floor"\nkind = "counter_min"\n'
            'metric = "crawl_requests_total"\nmin = 1e12\n'
        )
        out = io.StringIO()
        code = main(
            ["obs", "check", "--db", str(db), "--rules", str(rules)], out=out
        )
        assert code == 1
        assert "BREACH: impossible-floor" in out.getvalue()

    def test_check_report_is_deterministic(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        paths, meta = self._full_run(tmp_path)
        assert self._ingest(db, paths, meta)[0] == 0
        renders = []
        for _ in range(2):
            out = io.StringIO()
            assert main(
                ["obs", "check", "--db", str(db), "--rules", self.REPO_SLO],
                out=out,
            ) == 0
            renders.append(out.getvalue())
        assert renders[0] == renders[1]

    def test_flame_export(self, tmp_path):
        paths, _ = self._full_run(tmp_path)
        folded = tmp_path / "trace.folded"
        out = io.StringIO()
        code = main(
            ["obs", "flame", str(paths["trace"]), "--out", str(folded)],
            out=out,
        )
        assert code == 0
        lines = folded.read_text().splitlines()
        assert lines and lines == sorted(lines)
        assert any("crawl.campaign" in line for line in lines)

    def test_bad_rules_file_is_usage_error(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        paths, meta = self._full_run(tmp_path)
        assert self._ingest(db, paths, meta)[0] == 0
        assert main(
            ["obs", "check", "--db", str(db),
             "--rules", str(tmp_path / "missing.toml")],
            out=io.StringIO(),
        ) == 2

    def test_ingest_rejects_invalid_artifact(self, tmp_path):
        bad = tmp_path / "metrics.jsonl"
        bad.write_text('{"kind":"summary","name":"x","value":1}\n')
        code = main(
            ["obs", "ingest", "--db", str(tmp_path / "wh.sqlite"),
             "--metrics", str(bad)],
            out=io.StringIO(),
        )
        assert code == 1
