"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENT_IDS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 42
        assert args.scale == 0.001
        assert not args.no_apks

    def test_experiment_ids_collected(self):
        args = build_parser().parse_args(["experiment", "table4", "figure9"])
        assert args.ids == ["table4", "figure9"]


class TestCommands:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        listed = out.getvalue().split()
        assert listed == list(EXPERIMENT_IDS)

    def test_markets(self):
        out = io.StringIO()
        assert main(["markets"], out=out) == 0
        text = out.getvalue()
        assert "Google Play" in text
        assert "Tencent Myapp" in text
        assert text.count("\n") >= 18

    def test_run_metadata_only(self):
        out = io.StringIO()
        code = main(["run", "--scale", "0.0002", "--no-apks", "--seed", "5"],
                    out=out)
        assert code == 0
        assert "listings" in out.getvalue()

    def test_experiment_unknown_id(self):
        out = io.StringIO()
        assert main(["experiment", "table99", "--scale", "0.0002"], out=out) == 2

    def test_experiment_renders(self):
        out = io.StringIO()
        code = main(
            ["experiment", "figure9", "--scale", "0.0002", "--no-apks",
             "--seed", "5"],
            out=out,
        )
        assert code == 0
        assert "figure9" in out.getvalue()

    def test_report_writes_file(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "EXP.md"
        code = main(
            ["report", "--scale", "0.0002", "--no-apks", "--seed", "5",
             "--output", str(target)],
            out=out,
        )
        assert code == 0
        content = target.read_text()
        assert "## figure9" in content
        assert "## table1" in content
