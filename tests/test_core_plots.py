"""Tests for ASCII chart rendering."""

import pytest

from repro.core.plots import bar_chart, cdf_plot, grouped_bars, heatmap


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_none_values(self):
        assert "(n/a)" in bar_chart({"a": None, "b": 1.0})

    def test_sorting(self):
        text = bar_chart({"low": 1.0, "high": 5.0}, sort=True)
        assert text.splitlines()[0].startswith("high")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_all_zero(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text


class TestGroupedBars:
    def test_categories_covered(self):
        text = grouped_bars({
            "measured": {"bin1": 0.5, "bin2": 0.2},
            "paper": {"bin1": 0.4, "bin2": 0.3},
        })
        assert "[bin1]" in text and "[bin2]" in text
        assert "measured" in text and "paper" in text

    def test_empty(self):
        assert grouped_bars({}) == "(no data)"


class TestCdfPlot:
    def test_shape(self):
        xs = list(range(10))
        cdf = [(i + 1) / 10 for i in range(10)]
        text = cdf_plot(xs, cdf, height=5, width=10)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 levels + axis + caption
        assert lines[0].startswith(" 1.0")
        # Monotone curve: the top row has fewer marks than the bottom row.
        assert lines[0].count("#") <= lines[4].count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            cdf_plot([1, 2], [0.5])
        with pytest.raises(ValueError):
            cdf_plot([], [])


class TestHeatmap:
    def test_grid_dimensions(self):
        text = heatmap(
            {("a", "x"): 10, ("b", "y"): 5},
            rows=("a", "b"), columns=("x", "y"),
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + 2 rows + caption
        assert "@" in lines[1]  # the peak cell is darkest

    def test_empty_cells_blank(self):
        text = heatmap({}, rows=("a",), columns=("x",))
        assert "@" not in text
