"""Tests for report structures."""

import pytest

from repro.core.reports import FigureReport, TableReport, format_cell


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_floats(self):
        assert format_cell(0.1234) == "0.12"
        assert format_cell(123.4) == "123.4"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(0.0) == "0"

    def test_ints(self):
        assert format_cell(1234567) == "1,234,567"

    def test_strings(self):
        assert format_cell("abc") == "abc"


class TestTableReport:
    def _table(self):
        table = TableReport("t1", "Demo", columns=("market", "value"))
        table.add_row("tencent", 1.5)
        table.add_row("baidu", 2.5)
        return table

    def test_add_row_validates_width(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.add_row("only-one-cell")

    def test_column_access(self):
        assert self._table().column("value") == [1.5, 2.5]

    def test_row_map(self):
        rows = self._table().row_map()
        assert rows["baidu"][1] == 2.5

    def test_render_contains_data(self):
        table = self._table()
        table.notes.append("a note")
        text = table.render()
        assert "t1: Demo" in text
        assert "tencent" in text and "2.50" in text
        assert "note: a note" in text

    def test_render_alignment(self):
        lines = self._table().render().splitlines()
        header, sep = lines[1], lines[2]
        assert len(sep) == len(header)


class TestFigureReport:
    def test_render_dict_and_list(self):
        figure = FigureReport("f1", "Curve", data={
            "series": {"a": 1.0, "b": 2.0},
            "points": [1, 2, 3],
        })
        text = figure.render()
        assert "f1: Curve" in text
        assert "[series]" in text and "a: 1.00" in text
        assert "[points]" in text

    def test_render_truncates(self):
        figure = FigureReport("f2", "Big", data={"d": {str(i): i for i in range(50)}})
        assert "more)" in figure.render(max_items=5)

    def test_notes_rendered(self):
        figure = FigureReport("f3", "N", data={})
        figure.notes.append("observe")
        assert "note: observe" in figure.render()
