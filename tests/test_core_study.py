"""Tests for the study pipeline (uses the shared session study)."""

import pytest

from repro import Study, StudyConfig
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY
from repro.util.simtime import SECOND_CRAWL_DAY


class TestConfig:
    def test_defaults(self):
        config = StudyConfig()
        assert config.seed == 42
        assert 0 < config.scale <= 1

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            StudyConfig(scale=0)
        with pytest.raises(ValueError):
            StudyConfig(scale=1.5)

    def test_invalid_seed_share(self):
        with pytest.raises(ValueError):
            StudyConfig(gp_seed_share=0)


class TestStudyResult:
    def test_snapshot_covers_all_markets(self, study):
        assert set(study.snapshot.markets()) == set(ALL_MARKET_IDS)

    def test_units_built(self, study):
        assert study.units
        assert study.units_by_key[(study.units[0].package, study.units[0].signer)]

    def test_clock_at_or_past_second_crawl(self, study):
        assert study.clock.now >= SECOND_CRAWL_DAY

    def test_presence_collected(self, study):
        assert study.presence
        assert GOOGLE_PLAY in study.presence
        # HiApk and OPPO unreachable at the second campaign.
        assert "hiapk" not in study.presence
        assert "oppo" not in study.presence

    def test_removal_outcome_recorded(self, study):
        flagged, removed = study.removal_outcome[GOOGLE_PLAY]
        assert flagged >= removed >= 0

    def test_analysis_artifacts_cached(self, study):
        assert study.library_detection is study.library_detection
        assert study.vt_scan is study.vt_scan

    def test_all_clone_units_union(self, study):
        union = study.all_clone_units
        assert study.signature_clones.clone_units <= union
        assert study.code_clones.clone_units <= union


class TestMetadataOnlyStudy:
    def test_runs_without_apks(self):
        result = Study(StudyConfig(seed=7, scale=0.0002, download_apks=False)).run()
        assert len(result.snapshot) > 0
        assert all(not r.has_apk for r in result.snapshot)
        assert result.presence == {}
