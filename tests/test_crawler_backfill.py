"""Tests for the offline archive backfill (AndroZoo substitute)."""

import pytest

from repro.apk.archive import parse_apk
from repro.crawler.backfill import ArchiveBackfill
from repro.ecosystem.generator import EcosystemGenerator


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=61, scale=0.0002).generate()


class TestArchiveBackfill:
    def test_full_coverage_finds_gp_apps(self, world):
        archive = ArchiveBackfill(world, coverage=1.0)
        app = next(a for a in world.apps if "google_play" in a.placements)
        version = a_version(app)
        blob = archive.lookup(app.package, version)
        assert blob is not None
        parsed = parse_apk(blob)
        assert parsed.manifest.package == app.package
        assert archive.hits == 1

    def test_zero_coverage_finds_nothing(self, world):
        archive = ArchiveBackfill(world, coverage=0.0)
        app = next(a for a in world.apps if "google_play" in a.placements)
        assert archive.lookup(app.package, a_version(app)) is None
        assert archive.misses == 1

    def test_partial_coverage_is_stable(self, world):
        archive = ArchiveBackfill(world, coverage=0.5)
        app = next(a for a in world.apps if "google_play" in a.placements)
        first = archive.lookup(app.package, a_version(app))
        second = archive.lookup(app.package, a_version(app))
        assert (first is None) == (second is None)

    def test_wrong_version_name_misses(self, world):
        archive = ArchiveBackfill(world, coverage=1.0)
        app = next(a for a in world.apps if "google_play" in a.placements)
        assert archive.lookup(app.package, "999.999.999") is None

    def test_non_gp_apps_absent(self, world):
        archive = ArchiveBackfill(world, coverage=1.0)
        app = next(
            a for a in world.apps
            if "google_play" not in a.placements and a.placements
        )
        version = app.versions[next(iter(app.placements.values())).version_index]
        assert archive.lookup(app.package, version.version_name) is None

    def test_invalid_coverage(self, world):
        with pytest.raises(ValueError):
            ArchiveBackfill(world, coverage=1.5)


def a_version(app) -> str:
    placement = app.placements["google_play"]
    return app.versions[placement.version_index].version_name
