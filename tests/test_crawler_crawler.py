"""Integration tests for crawl coordination (own tiny world)."""

import pytest

from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.util.rng import stable_hash32
from repro.util.simtime import SECOND_CRAWL_DAY, SimClock


@pytest.fixture(scope="module")
def crawl_setup():
    world = EcosystemGenerator(seed=51, scale=0.0002).generate()
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    seeds = [
        l.package for l in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", l.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, backfill=ArchiveBackfill(world)
    )
    snapshot = coordinator.crawl("first", duration_days=15.0)
    return world, stores, servers, clock, coordinator, snapshot


class TestCoverage:
    def test_full_metadata_coverage(self, crawl_setup):
        world, stores, _, _, _, snapshot = crawl_setup
        # Parallel search should surface essentially the whole catalog.
        for market_id, store in stores.items():
            assert snapshot.market_size(market_id) >= 0.95 * len(store)

    def test_chinese_apk_coverage_full(self, crawl_setup):
        _, _, _, _, _, snapshot = crawl_setup
        assert snapshot.apk_coverage("tencent") == 1.0

    def test_gp_apk_coverage_via_backfill(self, crawl_setup):
        _, _, _, _, _, snapshot = crawl_setup
        coverage = snapshot.apk_coverage("google_play")
        # ~14% direct + ~89% of the rest from the archive => ~90%.
        assert 0.80 < coverage < 0.99

    def test_gp_was_rate_limited(self, crawl_setup):
        _, _, _, _, _, snapshot = crawl_setup
        assert "google_play" in snapshot.stats.rate_limited_markets
        assert snapshot.stats.apk_backfilled > 0

    def test_clock_advanced(self, crawl_setup):
        _, _, _, clock, _, _ = crawl_setup
        assert clock.now >= 2783 + 15

    def test_records_match_store_metadata(self, crawl_setup):
        _, stores, _, clock, _, snapshot = crawl_setup
        record = snapshot.in_market("tencent")[0]
        listing = stores["tencent"].get_any(record.package)
        assert record.version_code == listing.version_code
        assert record.developer_name == listing.developer_name

    def test_apk_identity_matches_metadata(self, crawl_setup):
        _, _, _, _, _, snapshot = crawl_setup
        for record in list(snapshot.with_apk())[:100]:
            assert record.apk.manifest.package == record.package
            assert record.apk.manifest.version_code == record.version_code


class TestRecheck:
    def test_recheck_reports_presence(self, crawl_setup):
        world, stores, servers, clock, coordinator, snapshot = crawl_setup
        if clock.now < SECOND_CRAWL_DAY:
            clock.advance_to(SECOND_CRAWL_DAY)
        some = [r.package for r in snapshot.in_market("tencent")[:10]]
        presence = coordinator.recheck({"tencent": some, "hiapk": some})
        assert "tencent" in presence
        assert "hiapk" not in presence  # dead at the second crawl
        assert set(presence["tencent"]) == set(some)

    def test_recheck_detects_removal(self, crawl_setup):
        world, stores, servers, clock, coordinator, snapshot = crawl_setup
        if clock.now < SECOND_CRAWL_DAY:
            clock.advance_to(SECOND_CRAWL_DAY)
        record = snapshot.in_market("wandoujia")[0]
        stores["wandoujia"].remove_listing(record.package, clock.now - 1)
        presence = coordinator.recheck({"wandoujia": [record.package]})
        assert presence["wandoujia"][record.package] is False
