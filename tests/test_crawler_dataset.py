"""Tests for snapshot persistence."""

import gzip

import pytest

from repro.crawler.dataset import (
    DatasetFormatError,
    load_snapshot,
    save_snapshot,
)
from repro.crawler.snapshot import Snapshot

from conftest import make_parsed, make_record


def _sample_snapshot():
    snap = Snapshot("august-2017")
    snap.add(make_record(market_id="tencent", package="com.a",
                         apk=make_parsed(package="com.a")))
    snap.add(make_record(market_id="google_play", package="com.b",
                         downloads=None, install_range=(1000, 10000)))
    snap.add(make_record(market_id="baidu", package="com.a",
                         apk=make_parsed(package="com.a")))
    return snap


class TestRoundtrip:
    def test_counts(self, tmp_path):
        path = tmp_path / "snap.jsonl.gz"
        assert save_snapshot(_sample_snapshot(), path) == 3
        loaded = load_snapshot(path)
        assert len(loaded) == 3
        assert loaded.label == "august-2017"

    def test_metadata_preserved(self, tmp_path):
        path = tmp_path / "snap.jsonl.gz"
        save_snapshot(_sample_snapshot(), path)
        loaded = load_snapshot(path)
        record = loaded.get("google_play", "com.b")
        assert record.install_range == (1000, 10000)
        assert record.downloads is None
        assert record.rating == 4.2

    def test_apk_preserved(self, tmp_path):
        path = tmp_path / "snap.jsonl.gz"
        original = _sample_snapshot()
        save_snapshot(original, path)
        loaded = load_snapshot(path)
        before = original.get("tencent", "com.a").apk
        after = loaded.get("tencent", "com.a").apk
        assert after.manifest == before.manifest
        assert after.md5 == before.md5
        assert after.package_digests() == before.package_digests()
        assert after.signer_fingerprint == before.signer_fingerprint

    def test_analyses_identical_after_roundtrip(self, tmp_path):
        from repro.analysis.corpus import build_units
        from repro.analysis.publishing import single_store_shares

        path = tmp_path / "snap.jsonl.gz"
        original = _sample_snapshot()
        save_snapshot(original, path)
        loaded = load_snapshot(path)
        assert single_store_shares(loaded) == single_store_shares(original)
        assert len(build_units(loaded)) == len(build_units(original))


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("")
        with pytest.raises(DatasetFormatError):
            load_snapshot(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.gz"
        with gzip.open(path, "wt") as handle:
            handle.write('{"format": "other"}\n')
        with pytest.raises(DatasetFormatError):
            load_snapshot(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "version.gz"
        with gzip.open(path, "wt") as handle:
            handle.write('{"format": "repro-snapshot", "version": 99}\n')
        with pytest.raises(DatasetFormatError):
            load_snapshot(path)

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("hello")
        with pytest.raises(DatasetFormatError):
            load_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            load_snapshot(tmp_path / "nope.gz")
