"""Tests for the BFS frontier."""

from repro.crawler.frontier import Frontier


class TestFrontier:
    def test_fifo_order(self):
        frontier = Frontier(["a", "b"])
        frontier.push("c")
        assert [frontier.pop(), frontier.pop(), frontier.pop()] == ["a", "b", "c"]

    def test_dedup(self):
        frontier = Frontier()
        assert frontier.push("a")
        assert not frontier.push("a")
        frontier.pop()
        assert not frontier.push("a")  # never re-admitted

    def test_push_many_counts_new(self):
        frontier = Frontier(["a"])
        assert frontier.push_many(["a", "b", "c"]) == 2

    def test_empty_pop(self):
        assert Frontier().pop() is None

    def test_bool_and_len(self):
        frontier = Frontier(["a"])
        assert frontier and len(frontier) == 1
        frontier.pop()
        assert not frontier

    def test_seen_tracking(self):
        frontier = Frontier(["a"])
        frontier.push("b")
        assert frontier.seen_count == 2
        assert frontier.has_seen("a") and not frontier.has_seen("z")
