"""Hostile-market integration: convergence, determinism, telemetry.

The scenario pack's acceptance properties:

* a crawler with credentials + identity rotation converges against a
  hostile fleet to the *same snapshot digest* as against a polite one
  (coverage is what hostility may cost; here rotation recovers it all);
* the digest is bit-identical at any worker count and across a
  kill-and-resume cut placed inside an active ban window;
* every hostility interaction is visible: client counters, telemetry
  aggregates, dead-letter reasons, and trace events.
"""

import json
import shutil

import pytest

from repro.crawler.crawler import (
    REASON_BANNED,
    CrawlCoordinator,
)
from repro.crawler.journal import CrawlJournal
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.hostility import HOSTILITY_BEHAVIORS, HostilityPolicy
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.identity import IdentityPolicy
from repro.obs import Observability
from repro.util.rng import stable_hash32
from repro.util.simtime import FIRST_CRAWL_DAY, SimClock

#: Markets whose profiles carry antibot behavior (see profiles.py).
ANTIBOT_MARKET = "baidu"

#: Gentle-but-real hostility tuning for the small test worlds: low
#: velocity limits so bans actually fire within a short campaign.
TIGHT = dict(velocity_limit=8, velocity_window=0.02, tarpit_strikes=1,
             tarpit_delay=0.02, ban_base=0.1, ban_cap=0.4)


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=77, scale=0.0002).generate()


def crawl_once(
    world,
    hostility=None,
    identity_policy=None,
    root=None,
    resume=False,
    workers=1,
    obs=None,
    download_apks=False,
):
    """One campaign; ``hostility`` maps market_id -> HostilityPolicy."""
    stores = build_stores(world)
    clock = SimClock()
    hostility = hostility or {}
    servers = {
        m: MarketServer(s, clock, hostility=hostility.get(m))
        for m, s in stores.items()
    }
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    journal = CrawlJournal(root, resume=resume) if root is not None else None
    coordinator = CrawlCoordinator(
        servers,
        clock,
        gp_seeds=seeds,
        backfill=None,
        download_apks=download_apks,
        workers=workers,
        journal=journal,
        obs=obs or Observability(),
        identity_policy=identity_policy,
        identity_seed=77,
    )
    try:
        snapshot = coordinator.crawl("hostile", duration_days=15.0)
    finally:
        if journal is not None:
            journal.close()
    return snapshot, servers


def hostile_everywhere(stores_markets, behaviors=("auth", "binary", "antibot")):
    return {
        m: HostilityPolicy.for_behaviors(behaviors, **TIGHT)
        for m in stores_markets
    }


class TestConvergence:
    @pytest.fixture(scope="class")
    def polite(self, world):
        snapshot, _ = crawl_once(world)
        assert len(snapshot) > 0
        return snapshot

    def test_hostile_converges_to_polite_digest(self, world, polite):
        hostility = hostile_everywhere(polite.markets())
        snapshot, servers = crawl_once(
            world, hostility=hostility,
            identity_policy=IdentityPolicy(size=4, rotation="on_ban"),
        )
        assert snapshot.content_digest() == polite.content_digest()
        assert not snapshot.dead_letters
        # The hostility was real, not a no-op.
        telemetry = snapshot.stats.telemetry
        assert telemetry.total_logins > 0
        assert telemetry.total_bans_hit > 0
        assert telemetry.total_identity_rotations > 0
        gate = servers[ANTIBOT_MARKET].hostility
        assert gate.bans > 0 and gate.served_binary > 0

    def test_workers_do_not_change_the_digest(self, world, polite):
        hostility = hostile_everywhere(polite.markets())
        policy = IdentityPolicy(size=4, rotation="on_ban")
        one, _ = crawl_once(world, hostility=hostility, identity_policy=policy,
                            workers=1)
        eight, _ = crawl_once(world, hostility=hostility, identity_policy=policy,
                              workers=8)
        assert one.content_digest() == eight.content_digest()
        assert one.content_digest() == polite.content_digest()

    def test_round_robin_rotation_also_converges(self, world, polite):
        hostility = hostile_everywhere(polite.markets())
        snapshot, _ = crawl_once(
            world, hostility=hostility,
            identity_policy=IdentityPolicy(size=4, rotation="round_robin",
                                           rotate_every=7),
        )
        assert snapshot.content_digest() == polite.content_digest()


class TestPackageListMarket:
    def test_package_list_market_reaches_full_coverage(self, world):
        polite, _ = crawl_once(world)
        hostility = {
            ANTIBOT_MARKET: HostilityPolicy.for_behaviors(("package_list",))
        }
        snapshot, servers = crawl_once(world, hostility=hostility)
        # The market refused every enumeration surface, yet the paged
        # /packages walk recovers the identical catalog.
        assert snapshot.content_digest() == polite.content_digest()
        gate = servers[ANTIBOT_MARKET].hostility
        assert gate.rejected_403 == 0  # the strategy never even tried
        assert not snapshot.dead_letters


class TestFullyHostileAcceptance:
    """The ISSUE acceptance scenario: all four behaviors at once."""

    @pytest.fixture(scope="class")
    def runs(self, world):
        polite, _ = crawl_once(world)
        hostility = hostile_everywhere(
            polite.markets(), behaviors=("auth", "binary", "antibot", "package_list")
        )
        policy = IdentityPolicy(size=4, rotation="on_ban")
        hostile, servers = crawl_once(
            world, hostility=hostility, identity_policy=policy
        )
        return polite, hostile, servers

    def test_campaign_completes_and_recovers_coverage(self, runs):
        polite, hostile, _ = runs
        assert hostile.degraded_markets() == []
        for market_id in polite.markets():
            baseline = polite.market_size(market_id)
            recovered = hostile.market_size(market_id)
            assert recovered >= 0.9 * baseline, (
                f"{market_id}: {recovered}/{baseline}"
            )

    def test_digest_matches_polite_baseline(self, runs):
        polite, hostile, _ = runs
        assert hostile.content_digest() == polite.content_digest()

    def test_every_behavior_fired(self, runs):
        # A well-behaved crawler never earns a 401 or an enumeration
        # 403 (it logs in proactively and switches to the package-list
        # walk), so each behavior shows up as what it *forced*: logins,
        # wire decodes, and absorbed bans.
        _, hostile, servers = runs
        fired = {"logins": 0, "bans": 0, "binary": 0}
        for server in servers.values():
            gate = server.hostility
            assert gate.policy.behaviors == HOSTILITY_BEHAVIORS
            fired["logins"] += gate.logins
            fired["bans"] += gate.bans
            fired["binary"] += gate.served_binary
        assert all(count > 0 for count in fired.values()), fired


class TestKillAndResumeMidBan:
    def truncate_lines(self, path, keep):
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text("".join(lines[:keep]), encoding="utf-8")

    def find_mid_ban_cut(self, lane_path):
        """The entry index right after which some identity is mid-ban."""
        lines = lane_path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            entry = json.loads(line)
            state = entry.get("state") or {}
            gate_state = (state.get("server") or {}).get("hostility")
            lane_state = state.get("lane") or {}
            if not gate_state or "offset" not in lane_state:
                continue
            lane_now = FIRST_CRAWL_DAY + float(lane_state["offset"])
            for client in gate_state["clients"].values():
                if client["ban_until"] > lane_now:
                    return index + 1  # keep this entry; cut right after
        return None

    @pytest.mark.parametrize("workers", [1, 8])
    def test_resume_inside_an_active_ban_window(self, world, tmp_path, workers):
        hostility = {
            m: HostilityPolicy.for_behaviors(("auth", "antibot"), **TIGHT)
            for m in ("baidu", "market360")
        }
        policy = IdentityPolicy(size=2, rotation="on_ban")
        ref_root = tmp_path / "ref"
        reference, _ = crawl_once(
            world, hostility=hostility, identity_policy=policy, root=ref_root
        )
        lane_path = ref_root / "hostile" / f"{ANTIBOT_MARKET}.jsonl"
        cut = self.find_mid_ban_cut(lane_path)
        assert cut is not None, "no journal entry carries an active ban"

        cut_root = tmp_path / "cut"
        shutil.copytree(ref_root, cut_root)
        self.truncate_lines(cut_root / "hostile" / f"{ANTIBOT_MARKET}.jsonl", cut)
        resumed, _ = crawl_once(
            world, hostility=hostility, identity_policy=policy,
            root=cut_root, resume=True, workers=workers,
        )
        assert resumed.content_digest() == reference.content_digest()

    def test_resume_from_halfway_with_full_hostility(self, world, tmp_path):
        hostility = hostile_everywhere(
            ("baidu", "tencent", "market360"),
            behaviors=("auth", "binary", "antibot", "package_list"),
        )
        policy = IdentityPolicy(size=4)
        ref_root = tmp_path / "ref"
        reference, _ = crawl_once(
            world, hostility=hostility, identity_policy=policy, root=ref_root
        )
        cut_root = tmp_path / "cut"
        shutil.copytree(ref_root, cut_root)
        for lane in sorted((cut_root / "hostile").glob("*.jsonl")):
            total = len(lane.read_text(encoding="utf-8").splitlines())
            self.truncate_lines(lane, max(1, total // 2))
        resumed, _ = crawl_once(
            world, hostility=hostility, identity_policy=policy,
            root=cut_root, resume=True, workers=4,
        )
        assert resumed.content_digest() == reference.content_digest()


class TestDeadLetterReasons:
    def test_unrotated_crawler_dead_letters_with_ban_reason(self, world):
        # No identity pool: the lane's single identity eats escalating
        # bans it cannot dodge, and the misses say why.
        hostility = {
            ANTIBOT_MARKET: HostilityPolicy.for_behaviors(
                ("antibot",), velocity_limit=3, velocity_window=0.02,
                tarpit_strikes=0, ban_base=2.0, ban_cap=8.0,
            )
        }
        snapshot, _ = crawl_once(world, hostility=hostility)
        assert snapshot.dead_letters
        assert all(l.reason == REASON_BANNED for l in snapshot.dead_letters)
        telemetry = snapshot.stats.telemetry
        reasons = telemetry.dead_letter_reasons()
        assert reasons.get(REASON_BANNED, 0) > 0
        report = telemetry.stats_report()
        assert "banned=" in report
        assert "hostility:" in report


class TestHostilityObservability:
    def test_trace_events_cover_the_hostile_interactions(self, world):
        obs = Observability.from_flags(trace=True, metrics=True)
        hostility = hostile_everywhere(("baidu", "tencent", "market360"))
        snapshot, _ = crawl_once(
            world, hostility=hostility,
            identity_policy=IdentityPolicy(size=3), obs=obs,
        )
        assert obs.tracer.events("auth.login")
        assert obs.tracer.events("ban.hit")
        rotations = obs.tracer.events("identity.rotate")
        assert rotations
        assert {e["attrs"]["reason"] for e in rotations} <= {"ban", "checkout"}
        # Telemetry counters agree with the metrics registry export.
        telemetry = snapshot.stats.telemetry
        assert telemetry.total_logins == len(obs.tracer.events("auth.login"))
        assert telemetry.total_bans_hit == len(obs.tracer.events("ban.hit"))

    def test_exported_trace_validates_against_the_schema(self, world, tmp_path):
        from repro.obs.schema import validate_metrics_file, validate_trace_file

        obs = Observability.from_flags(trace=True, metrics=True)
        crawl_once(
            world,
            hostility={"baidu": HostilityPolicy.for_behaviors(("auth", "antibot"),
                                                              **TIGHT)},
            identity_policy=IdentityPolicy(size=2), obs=obs,
        )
        trace_path, metrics_path = tmp_path / "t.jsonl", tmp_path / "m.jsonl"
        obs.export_trace(trace_path)
        obs.export_metrics(metrics_path)
        trace = validate_trace_file(trace_path)
        validate_metrics_file(metrics_path)
        names = {r["name"] for r in trace if r["kind"] == "event"}
        assert "ban.hit" in names
