"""Checkpoint journal: WAL mechanics and full-fidelity replay."""

import json

import pytest

from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.journal import (
    ApkStore,
    CrawlJournal,
    JournalError,
    LaneJournal,
)
from repro.crawler.snapshot import CrawlRecord
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock

from conftest import make_parsed


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=93, scale=0.0002).generate()


def crawl_once(world, root, resume=False, workers=1, faults=None,
               download_apks=True, label="campaign"):
    """One full campaign against freshly built servers."""
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock, faults=faults) for m, s in stores.items()}
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    journal = CrawlJournal(root, resume=resume) if root is not None else None
    coordinator = CrawlCoordinator(
        servers,
        clock,
        gp_seeds=seeds,
        backfill=ArchiveBackfill(world) if download_apks else None,
        download_apks=download_apks,
        workers=workers,
        journal=journal,
    )
    snapshot = coordinator.crawl(label, duration_days=15.0)
    if journal is not None:
        journal.close()
    return snapshot, coordinator


def assert_records_identical(a, b):
    """Field-by-field equality over every CrawlRecord (incl. APKs)."""
    assert len(a) == len(b)
    assert a.content_digest() == b.content_digest()
    for ra in a.sorted_records():
        rb = b.get(ra.market_id, ra.package)
        assert rb is not None, (ra.market_id, ra.package)
        assert ra.app_name == rb.app_name
        assert ra.version_name == rb.version_name
        assert ra.version_code == rb.version_code
        assert ra.category == rb.category
        assert ra.downloads == rb.downloads
        assert ra.install_range == rb.install_range
        assert ra.rating == rb.rating
        assert ra.updated_day == rb.updated_day
        assert ra.developer_name == rb.developer_name
        assert ra.crawl_day == rb.crawl_day
        assert ra.apk_source == rb.apk_source
        if ra.apk is None:
            assert rb.apk is None
        else:
            assert rb.apk is not None
            assert ra.apk.md5 == rb.apk.md5
            assert ra.apk.manifest == rb.apk.manifest
            assert ra.apk.signer_fingerprint == rb.apk.signer_fingerprint


class TestApkStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ApkStore(tmp_path / "apks")
        apk = make_parsed(package="com.store.roundtrip")
        md5 = store.put(apk)
        fresh = ApkStore(tmp_path / "apks")  # cold cache: reads the file
        loaded = fresh.get(md5)
        assert loaded.md5 == apk.md5
        assert loaded.manifest == apk.manifest
        assert loaded.package_digests() == apk.package_digests()

    def test_put_is_idempotent(self, tmp_path):
        store = ApkStore(tmp_path / "apks")
        apk = make_parsed()
        assert store.put(apk) == store.put(apk)
        assert len(list((tmp_path / "apks").glob("*.json"))) == 1

    def test_missing_entry_raises(self, tmp_path):
        store = ApkStore(tmp_path / "apks")
        with pytest.raises(JournalError):
            store.get("0" * 32)


class TestLaneJournal:
    def _lane(self, tmp_path, name="tencent"):
        return LaneJournal(tmp_path / f"{name}.jsonl", name)

    def test_record_then_replay_in_order(self, tmp_path):
        lane = self._lane(tmp_path)
        lane.record_begin({"server": 1})
        lane.record("discovery", "tencent", {"metas": []}, {"server": 2})
        lane.record("apk", "com.a", {"outcome": "market"}, {"server": 3})
        lane.close()
        reopened = self._lane(tmp_path)
        assert reopened.begin_state() == {"server": 1}
        assert reopened.last_state() == {"server": 3}
        assert reopened.replay("discovery", "tencent") == {"metas": []}
        assert reopened.replay("apk", "com.a") == {"outcome": "market"}
        assert reopened.replay("apk", "com.b") is None  # exhausted: go live

    def test_replay_divergence_raises(self, tmp_path):
        lane = self._lane(tmp_path)
        lane.record_begin({})
        lane.record("discovery", "tencent", {}, {})
        lane.close()
        reopened = self._lane(tmp_path)
        with pytest.raises(JournalError):
            reopened.replay("apk", "com.other")

    def test_append_with_pending_replay_raises(self, tmp_path):
        lane = self._lane(tmp_path)
        lane.record_begin({})
        lane.record("discovery", "tencent", {}, {})
        lane.close()
        reopened = self._lane(tmp_path)
        with pytest.raises(JournalError):
            reopened.record("apk", "com.a", {}, {})

    def test_torn_final_line_is_discarded(self, tmp_path):
        lane = self._lane(tmp_path)
        lane.record_begin({"s": 0})
        lane.record("apk", "com.a", {"outcome": "market"}, {"s": 1})
        lane.close()
        path = tmp_path / "tencent.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "apk", "key": "com.b", "resu')  # died mid-write
        reopened = self._lane(tmp_path)
        assert reopened.entries == 2
        assert reopened.last_state() == {"s": 1}
        assert reopened.replay("apk", "com.a") == {"outcome": "market"}
        assert reopened.replay("apk", "com.b") is None

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "tencent.jsonl"
        path.write_text('not json\n{"kind": "apk", "key": "a", "result": {}, "state": {}}\n')
        with pytest.raises(JournalError):
            LaneJournal(path, "tencent")


class TestCrawlJournalLifecycle:
    def test_fresh_run_clears_stale_campaign(self, tmp_path):
        journal = CrawlJournal(tmp_path, resume=False)
        journal.campaign("first").lane("tencent").record_begin({"s": 0})
        journal.close()
        fresh = CrawlJournal(tmp_path, resume=False)
        lane = fresh.campaign("first").lane("tencent")
        assert lane.begin_state() is None
        fresh.close()

    def test_resume_keeps_entries(self, tmp_path):
        journal = CrawlJournal(tmp_path, resume=False)
        journal.campaign("first").lane("tencent").record_begin({"s": 7})
        journal.close()
        resumed = CrawlJournal(tmp_path, resume=True)
        assert resumed.campaign("first").lane("tencent").begin_state() == {"s": 7}
        resumed.close()

    def test_version_mismatch_raises(self, tmp_path):
        (tmp_path / "journal.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(JournalError):
            CrawlJournal(tmp_path)


class TestFullReplayFidelity:
    def test_replayed_campaign_reproduces_every_field(self, world, tmp_path):
        # Original run journals everything; the "resumed" run replays the
        # complete journal against untouched servers and must rebuild the
        # records bit-for-bit — metadata, install ranges, None downloads,
        # APK payloads, and provenance tags included.
        root = tmp_path / "ckpt"
        original, _ = crawl_once(world, root)
        replayed, coordinator = crawl_once(world, root, resume=True)
        assert_records_identical(original, replayed)
        # The replay issued essentially no live traffic (recheck-free
        # campaign): servers only saw the journal restore.
        assert coordinator.engine.total_requests > 0  # restored counters...
        for server in coordinator._servers.values():
            assert server.requests_served >= 0
        # Field coverage sanity: the corpus genuinely exercises the
        # optional fields the journal must round-trip.
        records = list(original)
        assert any(r.install_range is not None and r.downloads is None
                   for r in records)
        assert any(r.downloads is not None for r in records)
        assert any(r.apk_source == "market" for r in records)
        assert any(r.apk_source == "archive" for r in records)
        assert any(r.apk is None for r in records)

    def test_journal_disabled_matches_journaled_run(self, world, tmp_path):
        plain, _ = crawl_once(world, None)
        journaled, _ = crawl_once(world, tmp_path / "ckpt")
        assert plain.content_digest() == journaled.content_digest()

    def test_replay_under_faults_is_identical(self, world, tmp_path):
        from repro.net.faults import FaultPlan

        plan = FaultPlan(transient_500=0.05, timeout=0.03, max_consecutive=2)
        root = tmp_path / "ckpt"
        original, _ = crawl_once(world, root, faults=plan, download_apks=False)
        replayed, _ = crawl_once(world, root, resume=True, faults=plan,
                                 download_apks=False)
        assert_records_identical(original, replayed)
