"""Parallel crawl engine: determinism across worker counts.

The engine shards work by market and merges in canonical order, so the
snapshot must be bit-identical — content digest and all — whether the
campaign ran on one thread or sixteen.
"""

import pytest

from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.engine import CrawlEngine, LaneClock
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.faults import FaultPlan
from repro.net.ratelimit import PerMarketRateLimiter
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=93, scale=0.0002).generate()


def _crawl(world, workers, faults=None, download_apks=True, rate_limiter=None):
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock, faults=faults) for m, s in stores.items()}
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers,
        clock,
        gp_seeds=seeds,
        backfill=ArchiveBackfill(world) if download_apks else None,
        download_apks=download_apks,
        workers=workers,
        rate_limiter=rate_limiter,
    )
    snapshot = coordinator.crawl("parallel-test", duration_days=15.0)
    return snapshot, snapshot.stats, coordinator


class TestWorkerCountInvariance:
    def test_identical_snapshots_at_1_4_16_workers(self, world):
        serial, serial_stats, _ = _crawl(world, workers=1)
        reference = serial.content_digest()
        assert len(serial) > 0
        for workers in (4, 16):
            snapshot, stats, _ = _crawl(world, workers=workers)
            assert snapshot.content_digest() == reference, workers
            assert len(snapshot) == len(serial)
            assert stats.records == serial_stats.records
            assert stats.searches == serial_stats.searches
            assert stats.apk_downloaded == serial_stats.apk_downloaded
            assert stats.apk_backfilled == serial_stats.apk_backfilled
            assert stats.apk_missing == serial_stats.apk_missing
            assert stats.apk_parse_errors == serial_stats.apk_parse_errors
            assert stats.rate_limited_markets == serial_stats.rate_limited_markets

    def test_identical_under_faults(self, world):
        # Per-market request ordinals drive the fault injection, and
        # lanes serialize per-market traffic, so even a faulty campaign
        # is bit-reproducible at any width.
        plan = FaultPlan(transient_500=0.05, timeout=0.03, max_consecutive=2)
        serial, _, _ = _crawl(world, workers=1, faults=plan, download_apks=False)
        parallel, _, _ = _crawl(world, workers=8, faults=plan, download_apks=False)
        assert parallel.content_digest() == serial.content_digest()

    def test_telemetry_request_totals_invariant(self, world):
        _, stats_1, _ = _crawl(world, workers=1, download_apks=False)
        _, stats_8, _ = _crawl(world, workers=8, download_apks=False)
        t1, t8 = stats_1.telemetry, stats_8.telemetry
        assert t1 is not None and t8 is not None
        assert t1.total_requests == t8.total_requests
        assert t1.total_records == t8.total_records
        assert t1.search_rounds == t8.search_rounds
        assert t1.queue_peak == t8.queue_peak
        per_market_1 = {m: lane.requests for m, lane in t1.markets.items()}
        per_market_8 = {m: lane.requests for m, lane in t8.markets.items()}
        assert per_market_1 == per_market_8


class TestEngine:
    def test_rejects_nonpositive_workers(self, world):
        with pytest.raises(ValueError):
            _crawl(world, workers=0)

    def test_lane_clock_overlays_shared_clock(self):
        base = SimClock()
        lane = LaneClock(base)
        start = lane.now
        lane.advance(2.0)
        assert lane.now == start + 2.0
        assert base.now == start  # shared clock untouched
        base.advance(1.0)
        assert lane.now == start + 3.0
        with pytest.raises(ValueError):
            lane.advance(-1.0)

    def test_shared_clock_frozen_during_campaign(self, world):
        stores = build_stores(world)
        clock = SimClock()
        start = clock.now
        servers = {
            m: MarketServer(s, clock, faults=FaultPlan(transient_500=0.1))
            for m, s in stores.items()
        }
        coordinator = CrawlCoordinator(servers, clock, download_apks=False, workers=4)
        snapshot = coordinator.crawl("frozen", duration_days=3.0)
        # Lane back-off never leaked into the campaign clock: the only
        # movement is the explicit duration accounting...
        assert clock.now == pytest.approx(start + 3.0)
        # ...and every record is stamped with the campaign start.
        assert {r.crawl_day for r in snapshot} == {start}
        assert coordinator.engine.max_lane_backoff > 0

    def test_run_preserves_task_key_order(self, world):
        stores = build_stores(world)
        clock = SimClock()
        servers = {m: MarketServer(s, clock) for m, s in stores.items()}
        engine = CrawlEngine(servers, clock, workers=8)
        results = engine.run({m: (lambda m=m: m) for m in engine.market_ids})
        assert list(results) == engine.market_ids
        assert all(k == v for k, v in results.items())


class TestPerMarketPacing:
    def test_throttled_market_does_not_stall_fleet(self, world):
        # Tencent is paced hard; every other market is effectively
        # unpaced.  Only tencent's lane should accumulate pacing delay.
        limiter = PerMarketRateLimiter(
            rate=1e9, burst=1e9, overrides={"tencent": (2000.0, 1.0)}
        )
        snapshot, stats, coordinator = _crawl(
            world, workers=8, download_apks=False, rate_limiter=limiter
        )
        assert len(snapshot) > 0
        assert limiter.sim_days_waited("tencent") > 0
        for market_id in coordinator.engine.market_ids:
            if market_id != "tencent":
                assert limiter.sim_days_waited(market_id) == 0.0
        lanes = stats.telemetry.markets
        assert lanes["tencent"].sim_days_paced > 0
        assert lanes["google_play"].sim_days_paced == 0.0

    def test_pacing_does_not_change_snapshot(self, world):
        plain, _, _ = _crawl(world, workers=4, download_apks=False)
        limiter = PerMarketRateLimiter(rate=5000.0, burst=10.0)
        paced, _, _ = _crawl(world, workers=4, download_apks=False, rate_limiter=limiter)
        assert paced.content_digest() == plain.content_digest()
