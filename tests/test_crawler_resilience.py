"""Fault tolerance: kill-and-resume determinism and graceful degradation.

The two acceptance properties of the robustness layer:

* a campaign killed at an arbitrary point and resumed from its journal
  produces a snapshot bit-identical to an uninterrupted run, at any
  worker count;
* a market that blacks out mid-campaign degrades (breaker quarantine,
  dead letters, MarketHealth) instead of hanging or crashing the
  campaign — unless the operator asked for ``fail_fast``.
"""

import shutil

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.journal import CrawlJournal
from repro.crawler.snapshot import HEALTH_DEGRADED
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.breaker import MarketQuarantinedError
from repro.net.faults import FaultPlan
from repro.util.rng import stable_hash32
from repro.util.simtime import FIRST_CRAWL_DAY, SimClock

BLACKOUT_MARKET = "baidu"  # integer-index walker: the nastiest to kill
BLACKOUT_ALL_CAMPAIGN = FaultPlan.blackout(FIRST_CRAWL_DAY, 20.0)


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=93, scale=0.0002).generate()


def crawl_once(world, root=None, resume=False, workers=1, market_faults=None,
               fail_fast=False, download_apks=True):
    stores = build_stores(world)
    clock = SimClock()
    market_faults = market_faults or {}
    servers = {
        m: MarketServer(s, clock, faults=market_faults.get(m))
        for m, s in stores.items()
    }
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    journal = CrawlJournal(root, resume=resume) if root is not None else None
    coordinator = CrawlCoordinator(
        servers,
        clock,
        gp_seeds=seeds,
        backfill=ArchiveBackfill(world) if download_apks else None,
        download_apks=download_apks,
        workers=workers,
        journal=journal,
        fail_fast=fail_fast,
    )
    try:
        snapshot = coordinator.crawl("resilience", duration_days=15.0)
    finally:
        if journal is not None:
            journal.close()
    return snapshot, coordinator


def truncate_lines(path, keep):
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    path.write_text("".join(lines[:keep]), encoding="utf-8")
    return len(lines)


class TestKillAndResume:
    """Simulated kills: the journal is cut, the campaign restarted."""

    @pytest.fixture(scope="class")
    def reference(self, world, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt") / "ref"
        snapshot, _ = crawl_once(world, root)
        assert len(snapshot) > 0
        return snapshot, root

    def _resume_after_cut(self, world, reference, tmp_path, cut, workers):
        ref_snapshot, ref_root = reference
        root = tmp_path / "cut"
        shutil.copytree(ref_root, root)
        cut(root / "resilience")
        resumed, _ = crawl_once(world, root, resume=True, workers=workers)
        assert resumed.content_digest() == ref_snapshot.content_digest()
        assert len(resumed) == len(ref_snapshot)
        assert resumed.degraded_markets() == []

    @pytest.mark.parametrize("workers", [1, 8])
    def test_resume_from_begin_only(self, world, reference, tmp_path, workers):
        # Killed right after campaign start: every lane keeps only its
        # begin entry, so the whole campaign re-runs live.
        def cut(campaign_dir):
            for lane in sorted(campaign_dir.glob("*.jsonl")):
                truncate_lines(lane, 1)

        self._resume_after_cut(world, reference, tmp_path, cut, workers)

    @pytest.mark.parametrize("workers", [1, 8])
    def test_resume_from_halfway(self, world, reference, tmp_path, workers):
        # Killed mid-flight: every lane keeps roughly half its entries,
        # each lane cut at a different phase of its own stream.
        def cut(campaign_dir):
            for lane in sorted(campaign_dir.glob("*.jsonl")):
                total = len(lane.read_text(encoding="utf-8").splitlines())
                truncate_lines(lane, max(1, total // 2))

        self._resume_after_cut(world, reference, tmp_path, cut, workers)

    @pytest.mark.parametrize("workers", [1, 8])
    def test_resume_from_near_end(self, world, reference, tmp_path, workers):
        # Killed in the home stretch: one busy lane loses its last two
        # entries, everything else is complete.
        def cut(campaign_dir):
            lanes = sorted(
                campaign_dir.glob("*.jsonl"),
                key=lambda p: len(p.read_text(encoding="utf-8").splitlines()),
            )
            busiest = lanes[-1]
            total = len(busiest.read_text(encoding="utf-8").splitlines())
            truncate_lines(busiest, max(1, total - 2))

        self._resume_after_cut(world, reference, tmp_path, cut, workers)

    def test_resume_from_torn_write(self, world, reference, tmp_path):
        # The process died mid-append: the busiest lane ends in half a
        # JSON line, which the loader must discard, not choke on.
        def cut(campaign_dir):
            lanes = sorted(
                campaign_dir.glob("*.jsonl"),
                key=lambda p: p.stat().st_size,
            )
            busiest = lanes[-1]
            data = busiest.read_bytes()
            cut_at = data.rfind(b"\n", 0, len(data) - 1)  # mid-final-line
            busiest.write_bytes(data[: cut_at + 30])

        self._resume_after_cut(world, reference, tmp_path, cut, workers=4)

    def test_completed_journal_replays_without_live_traffic(
        self, world, reference, tmp_path
    ):
        ref_snapshot, ref_root = reference
        root = tmp_path / "full"
        shutil.copytree(ref_root, root)
        resumed, coordinator = crawl_once(world, root, resume=True, workers=8)
        assert resumed.content_digest() == ref_snapshot.content_digest()
        # The restored telemetry still describes the original traffic.
        assert coordinator.engine.total_requests > 0


class TestBlackoutDegradation:
    def test_blacked_out_market_degrades_not_hangs(self, world):
        snapshot, coordinator = crawl_once(
            world,
            market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            download_apks=False,
        )
        assert snapshot.degraded_markets() == [BLACKOUT_MARKET]
        health = snapshot.health[BLACKOUT_MARKET]
        assert health.status == HEALTH_DEGRADED
        assert not health.ok
        assert health.completed == 0
        assert snapshot.dead_letters
        assert all(l.market_id == BLACKOUT_MARKET for l in snapshot.dead_letters)
        assert coordinator.engine.lane(BLACKOUT_MARKET).breaker.quarantined

    def test_other_markets_unaffected_by_the_blackout(self, world):
        clean, _ = crawl_once(world, download_apks=False)
        degraded, _ = crawl_once(
            world,
            market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            download_apks=False,
        )
        for market_id in clean.markets():
            if market_id == BLACKOUT_MARKET:
                continue
            assert degraded.market_size(market_id) == clean.market_size(market_id), (
                market_id
            )

    def test_telemetry_reports_the_quarantine(self, world):
        snapshot, _ = crawl_once(
            world,
            market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            download_apks=False,
        )
        telemetry = snapshot.stats.telemetry
        lane = telemetry.markets[BLACKOUT_MARKET]
        assert lane.health == HEALTH_DEGRADED
        assert lane.breaker_trips > 0
        assert lane.breaker_fast_fails > 0
        assert lane.failures > 0
        assert telemetry.degraded_markets() == [BLACKOUT_MARKET]
        report = telemetry.stats_report()
        assert "degraded" in report
        assert BLACKOUT_MARKET in report

    def test_fail_fast_raises_instead(self, world):
        with pytest.raises(MarketQuarantinedError) as exc:
            crawl_once(
                world,
                market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
                download_apks=False,
                fail_fast=True,
            )
        assert exc.value.market_id == BLACKOUT_MARKET

    def test_degraded_campaign_is_still_deterministic(self, world, tmp_path):
        # Even a campaign that loses a market must replay exactly.
        root = tmp_path / "ckpt"
        original, _ = crawl_once(
            world, root,
            market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            download_apks=False,
        )
        campaign_dir = root / "resilience"
        for lane in sorted(campaign_dir.glob("*.jsonl")):
            total = len(lane.read_text(encoding="utf-8").splitlines())
            truncate_lines(lane, max(1, (2 * total) // 3))
        resumed, _ = crawl_once(
            world, root, resume=True,
            market_faults={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            download_apks=False,
        )
        assert resumed.content_digest() == original.content_digest()
        assert resumed.degraded_markets() == [BLACKOUT_MARKET]


class TestStudyLevelDegradation:
    """The end-to-end acceptance scenario: one dark market, full study."""

    @pytest.fixture(scope="class")
    def degraded_study(self):
        config = StudyConfig(
            seed=42,
            scale=0.0005,
            market_fault_plans={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
        )
        return Study(config).run()

    def test_study_completes_with_exactly_one_degraded_market(self, degraded_study):
        result = degraded_study
        assert result.degraded_markets == [BLACKOUT_MARKET]
        assert result.snapshot.health[BLACKOUT_MARKET].status == HEALTH_DEGRADED
        for market_id, health in result.snapshot.health.items():
            if market_id != BLACKOUT_MARKET:
                assert health.ok, market_id
        assert BLACKOUT_MARKET not in result.presence  # dark for the recheck

    def test_crawl_report_annotates_the_degradation(self, degraded_study):
        report = degraded_study.crawl_report()
        assert "degraded" in report
        assert BLACKOUT_MARKET in report

    def test_every_experiment_renders_with_a_degradation_note(self, degraded_study):
        from repro.experiments import EXPERIMENT_IDS, run_experiment

        for experiment_id in EXPERIMENT_IDS:
            if experiment_id == "churn":  # needs full_second_crawl
                continue
            report = run_experiment(experiment_id, degraded_study)
            rendered = report.render()
            assert rendered, experiment_id
            assert any("degraded" in note for note in report.notes), experiment_id

    def test_fail_fast_study_raises(self):
        config = StudyConfig(
            seed=42,
            scale=0.0005,
            market_fault_plans={BLACKOUT_MARKET: BLACKOUT_ALL_CAMPAIGN},
            fail_fast=True,
        )
        with pytest.raises(MarketQuarantinedError):
            Study(config).run()


class TestStudyLevelResume:
    def test_checkpointed_study_resumes_bit_identical(self, tmp_path):
        root = tmp_path / "ckpt"
        config = StudyConfig(
            seed=11, scale=0.0003, full_second_crawl=True,
            checkpoint_dir=str(root),
        )
        original = Study(config).run()
        # Kill simulation: lose the tail of the busiest first-campaign
        # lane and the *entire* second campaign.
        campaign_dir = root / "first"
        lanes = sorted(campaign_dir.glob("*.jsonl"), key=lambda p: p.stat().st_size)
        total = len(lanes[-1].read_text(encoding="utf-8").splitlines())
        truncate_lines(lanes[-1], max(1, total // 2))
        shutil.rmtree(root / "second")
        resumed = Study(
            StudyConfig(
                seed=11, scale=0.0003, full_second_crawl=True,
                checkpoint_dir=str(root), resume=True,
            )
        ).run()
        assert (resumed.snapshot.content_digest()
                == original.snapshot.content_digest())
        assert (resumed.second_snapshot.content_digest()
                == original.second_snapshot.content_digest())
        assert resumed.presence == original.presence
