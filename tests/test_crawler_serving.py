"""Campaigns over the serving tier: the transport/engine digest oracle.

The tentpole contract: ``content_digest()`` is bit-identical whether
lanes call ``server.handle`` in-process or cross the asyncio serving
tier's sockets, whether the engine schedules on threads or one event
loop, and at any concurrency — including a campaign killed mid-flight
and resumed over sockets.
"""

import shutil

import pytest

from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.journal import CrawlJournal
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.serving import ServingTier
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=93, scale=0.0002).generate()


def crawl_once(world, transport="inprocess", engine="thread", pipeline=1,
               workers=1, download_apks=True, root=None, resume=False,
               label="serving"):
    """One full campaign, optionally through a live serving tier."""
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    tier = None
    transports = None
    journal = CrawlJournal(root, resume=resume) if root is not None else None
    coordinator = None
    try:
        if transport == "socket":
            tier = ServingTier(servers).start()
            transports = (tier.async_transports() if engine == "asyncio"
                          else tier.transports())
        coordinator = CrawlCoordinator(
            servers,
            clock,
            gp_seeds=seeds,
            backfill=ArchiveBackfill(world) if download_apks else None,
            download_apks=download_apks,
            workers=workers,
            journal=journal,
            transports=transports,
            engine=engine,
            pipeline=pipeline,
        )
        snapshot = coordinator.crawl(label, duration_days=15.0)
    finally:
        if coordinator is not None:
            coordinator.close()
        if tier is not None:
            tier.stop()
        if journal is not None:
            journal.close()
    return snapshot


class TestTransportEngineOracle:
    @pytest.fixture(scope="class")
    def reference(self, world):
        snapshot = crawl_once(world)
        assert len(snapshot) > 0
        return snapshot

    @pytest.mark.parametrize("transport,engine,pipeline,workers", [
        ("inprocess", "thread", 1, 8),
        ("socket", "thread", 1, 1),
        ("socket", "thread", 1, 8),
        ("inprocess", "asyncio", 1, 8),
        ("inprocess", "asyncio", 8, 8),
        ("socket", "asyncio", 1, 8),
        ("socket", "asyncio", 8, 8),
    ])
    def test_digest_invariant(self, world, reference, transport, engine,
                              pipeline, workers):
        snapshot = crawl_once(
            world, transport=transport, engine=engine,
            pipeline=pipeline, workers=workers,
        )
        assert snapshot.content_digest() == reference.content_digest()
        assert len(snapshot) == len(reference)

    def test_socket_traffic_actually_crossed_the_wire(self, world):
        stores = build_stores(world)
        clock = SimClock()
        servers = {m: MarketServer(s, clock) for m, s in stores.items()}
        tier = ServingTier(servers).start()
        coordinator = CrawlCoordinator(
            servers, clock, download_apks=False,
            transports=tier.transports(),
        )
        try:
            snapshot = coordinator.crawl("wire", duration_days=15.0)
        finally:
            coordinator.close()
            tier.stop()
        assert len(snapshot) > 0
        # Every lane request crossed a socket frame.
        assert tier.total_frames_served > 0
        total_served = sum(s.requests_served for s in servers.values())
        assert tier.total_frames_served == total_served


class TestEngineValidation:
    def test_pipeline_requires_asyncio(self, world):
        with pytest.raises(ValueError, match="asyncio"):
            crawl_once(world, engine="thread", pipeline=4)

    def test_pipeline_incompatible_with_journal(self, world, tmp_path):
        with pytest.raises(ValueError, match="journal"):
            crawl_once(world, engine="asyncio", pipeline=4,
                       root=tmp_path / "ckpt")


class TestKillAndResumeOverSockets:
    """Satellite: a socket-transport campaign killed mid-flight resumes
    to the same journal state and snapshot digest as in-process."""

    @pytest.fixture(scope="class")
    def reference(self, world, tmp_path_factory):
        # The uninterrupted in-process journaled run is the oracle.
        root = tmp_path_factory.mktemp("ckpt") / "ref"
        snapshot = crawl_once(world, root=root)
        assert len(snapshot) > 0
        return snapshot, root

    @staticmethod
    def _truncate_lines(path, keep):
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text("".join(lines[:keep]), encoding="utf-8")

    @pytest.mark.parametrize("workers", [1, 8])
    def test_resume_over_socket_matches_inprocess(self, world, reference,
                                                  tmp_path, workers):
        ref_snapshot, ref_root = reference
        root = tmp_path / "cut"
        shutil.copytree(ref_root, root)
        # Kill mid-flight: every lane keeps roughly half its WAL.
        for lane in sorted((root / "serving").glob("*.jsonl")):
            total = len(lane.read_text(encoding="utf-8").splitlines())
            self._truncate_lines(lane, max(1, total // 2))
        resumed = crawl_once(world, transport="socket", workers=workers,
                             root=root, resume=True)
        assert resumed.content_digest() == ref_snapshot.content_digest()
        assert len(resumed) == len(ref_snapshot)
        assert resumed.degraded_markets() == []
        # The resumed journal converged on the same state as the
        # uninterrupted in-process run, lane by lane.
        ref_journal = CrawlJournal(ref_root, resume=True)
        cut_journal = CrawlJournal(root, resume=True)
        try:
            lanes = sorted(p.stem for p in (ref_root / "serving").glob("*.jsonl"))
            assert lanes
            for market_id in lanes:
                ref_lane = ref_journal.campaign("serving").lane(market_id)
                cut_lane = cut_journal.campaign("serving").lane(market_id)
                assert cut_lane.last_state() == ref_lane.last_state(), market_id
                assert cut_lane.entries == ref_lane.entries, market_id
        finally:
            ref_journal.close()
            cut_journal.close()
