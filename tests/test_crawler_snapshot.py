"""Tests for crawl snapshots and records."""

from repro.crawler.snapshot import CrawlRecord, Snapshot

from conftest import make_parsed, make_record


class TestCrawlRecord:
    def test_from_metadata(self):
        meta = {
            "package": "com.a", "name": "A", "version_name": "1.0",
            "version_code": 3, "category": "Tools", "downloads": 500,
            "install_range": None, "rating": 4.5, "updated_day": 2000,
            "developer": "Dev",
        }
        record = CrawlRecord.from_metadata("tencent", meta, 2784.0)
        assert record.package == "com.a"
        assert record.downloads == 500
        assert record.install_range is None

    def test_from_metadata_with_range(self):
        meta = {
            "package": "com.a", "name": "A", "version_name": "1.0",
            "version_code": 3, "category": "Tools", "downloads": None,
            "install_range": [10000, 100000], "rating": 0.0,
            "updated_day": 2000, "developer": "Dev",
        }
        record = CrawlRecord.from_metadata("google_play", meta, 2784.0)
        assert record.install_range == (10000, 100000)

    def test_apk_accessors(self):
        record = make_record(apk=make_parsed(signer="aa" * 8))
        assert record.has_apk
        assert record.signer == "aa" * 8
        assert record.md5 == record.apk.md5

    def test_no_apk_accessors(self):
        record = make_record()
        assert not record.has_apk
        assert record.signer is None and record.md5 is None


class TestSnapshot:
    def test_add_and_dedup(self):
        snap = Snapshot("t")
        assert snap.add(make_record())
        assert not snap.add(make_record())  # same (market, package)
        assert snap.add(make_record(market_id="baidu"))
        assert len(snap) == 2

    def test_indexes(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="tencent", package="com.a"))
        snap.add(make_record(market_id="baidu", package="com.a"))
        snap.add(make_record(market_id="tencent", package="com.b"))
        assert snap.market_size("tencent") == 2
        assert snap.markets_of("com.a") == ["baidu", "tencent"]
        assert snap.packages() == ["com.a", "com.b"]
        assert snap.get("baidu", "com.a").package == "com.a"
        assert snap.get("baidu", "com.b") is None

    def test_markets_sorted(self):
        snap = Snapshot("t")
        snap.add(make_record(market_id="tencent"))
        snap.add(make_record(market_id="baidu"))
        assert snap.markets() == ["baidu", "tencent"]

    def test_apk_coverage(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", apk=make_parsed()))
        snap.add(make_record(package="com.b"))
        assert snap.apk_coverage("tencent") == 0.5
        assert snap.apk_coverage("nowhere") == 0.0

    def test_with_apk_iterator(self):
        snap = Snapshot("t")
        snap.add(make_record(package="com.a", apk=make_parsed()))
        snap.add(make_record(package="com.b"))
        assert [r.package for r in snap.with_apk()] == ["com.a"]
