"""Tests for per-market discovery strategies against synthetic servers."""

import pytest

from repro.crawler.strategies import (
    BfsRelatedStrategy,
    CategoryPagesStrategy,
    IntegerIndexStrategy,
    strategy_for,
)
from repro.net.client import HttpClient
from repro.net.http import Request, Response
from repro.util.simtime import SimClock


def _meta(package, developer="dev"):
    return {
        "package": package, "name": package, "version_name": "1.0",
        "version_code": 1, "category": "Tools", "downloads": 10,
        "install_range": None, "rating": 0.0, "updated_day": 2000,
        "developer": developer,
    }


class FakeCatalogServer:
    """A tiny market: apps a..e, related edges a->b->c, dev of d has e."""

    def __init__(self):
        self.apps = {p: _meta(p, developer="dev-" + p) for p in "abcde"}
        self.apps["e"]["developer"] = "dev-d"
        self.related = {"a": ["b"], "b": ["c"], "c": [], "d": [], "e": []}

    def handle(self, request: Request) -> Response:
        if request.path == "/app":
            meta = self.apps.get(request.param("package"))
            return Response.json_ok(meta) if meta else Response.not_found()
        if request.path == "/related":
            peers = self.related.get(request.param("package"), [])
            return Response.json_ok([self.apps[p] for p in peers])
        if request.path == "/developer":
            name = request.param("name")
            return Response.json_ok(
                [m for m in self.apps.values() if m["developer"] == name]
            )
        if request.path == "/categories":
            return Response.json_ok(["Tools"])
        if request.path == "/category":
            page = int(request.param("page", 0))
            items = sorted(self.apps)[page * 2 : page * 2 + 2]
            return Response.json_ok([self.apps[p] for p in items])
        if request.path == "/index":
            i = int(request.param("i", -1))
            items = sorted(self.apps)
            if i >= len(items):
                return Response.not_found()
            return Response.json_ok(self.apps[items[i]])
        return Response.not_found()


@pytest.fixture()
def client():
    return HttpClient(FakeCatalogServer().handle, SimClock())


class TestBfsRelated:
    def test_reaches_transitive_related(self, client):
        found = {m["package"] for m in BfsRelatedStrategy(["a"]).discover(client)}
        assert {"a", "b", "c"} <= found

    def test_same_developer_expansion(self, client):
        found = {m["package"] for m in BfsRelatedStrategy(["d"]).discover(client)}
        assert "e" in found  # shared developer dev-d

    def test_island_unreachable(self, client):
        found = {m["package"] for m in BfsRelatedStrategy(["a"]).discover(client)}
        assert "d" not in found

    def test_missing_seed_skipped(self, client):
        found = list(BfsRelatedStrategy(["zz", "a"]).discover(client))
        assert any(m["package"] == "a" for m in found)

    def test_max_apps_cap(self, client):
        found = list(BfsRelatedStrategy(["a"], max_apps=2).discover(client))
        assert len(found) == 2


class TestIntegerIndex:
    def test_walks_whole_index(self, client):
        found = [m["package"] for m in IntegerIndexStrategy().discover(client)]
        assert found == sorted("abcde")


class TestCategoryPages:
    def test_walks_all_pages(self, client):
        found = [m["package"] for m in CategoryPagesStrategy().discover(client)]
        assert sorted(found) == sorted("abcde")


class TestFactory:
    def test_known_strategies(self):
        assert isinstance(strategy_for("bfs_related", ["a"]), BfsRelatedStrategy)
        assert isinstance(strategy_for("int_index"), IntegerIndexStrategy)
        assert isinstance(strategy_for("category_pages"), CategoryPagesStrategy)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            strategy_for("oracle")
