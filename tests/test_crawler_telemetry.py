"""Tests for the crawl telemetry layer."""

from repro.crawler.telemetry import CrawlTelemetry, MarketTelemetry
from repro.net.client import ClientStats
from repro.obs.metrics import MetricsRegistry


class TestMarketTelemetry:
    def test_fold_client_accumulates(self):
        lane = MarketTelemetry("tencent")
        delta = ClientStats(
            requests=10,
            retries=3,
            rate_limited=1,
            timeouts=2,
            malformed=1,
            not_found=4,
            failures=1,
            sim_days_slept=0.25,
        )
        lane.fold_client(delta)
        lane.fold_client(delta)
        assert lane.requests == 20
        assert lane.retries == 6
        assert lane.rate_limited == 2
        assert lane.timeouts == 4
        assert lane.malformed == 2
        assert lane.not_found == 8
        assert lane.failures == 2
        assert lane.sim_days_backoff == 0.5

    def test_fold_client_keeps_breaker_counters(self):
        lane = MarketTelemetry("oppo")
        lane.fold_client(ClientStats(
            requests=5, failures=3, rate_limit_aborts=1, breaker_fast_fails=2,
        ))
        assert lane.rate_limit_aborts == 1
        assert lane.breaker_fast_fails == 2

    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        lane = MarketTelemetry("baidu", registry, campaign="first")
        lane.requests += 7
        series = registry.counter(
            "crawl_requests_total", campaign="first", market="baidu"
        )
        assert series.value == 7
        # The attribute is a *view*: a registry write is visible back.
        series.inc(3)
        assert lane.requests == 10

    def test_health_is_a_degraded_gauge(self):
        registry = MetricsRegistry()
        lane = MarketTelemetry("oppo", registry, campaign="c")
        assert lane.health == "ok"
        lane.health = "degraded"
        assert lane.health == "degraded"
        gauge = registry.gauge("crawl_market_degraded", campaign="c", market="oppo")
        assert gauge.value == 1.0


class TestCrawlTelemetry:
    def test_market_lazily_creates_lanes(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("baidu")
        assert lane.market_id == "baidu"
        assert telemetry.market("baidu") is lane
        assert set(telemetry.markets) == {"baidu"}

    def test_queue_peak_tracks_maximum(self):
        telemetry = CrawlTelemetry()
        for depth in (3, 9, 4):
            telemetry.observe_queue_depth(depth)
        assert telemetry.queue_peak == 9

    def test_aggregates(self):
        telemetry = CrawlTelemetry()
        a = telemetry.market("a")
        a.requests, a.retries, a.records = 10, 2, 5
        a.rate_limited, a.timeouts, a.malformed = 1, 1, 1
        b = telemetry.market("b")
        b.requests, b.retries, b.records = 4, 1, 2
        assert telemetry.total_requests == 14
        assert telemetry.total_retries == 3
        assert telemetry.total_records == 7
        assert telemetry.total_faults_absorbed == 6

    def test_stats_report_renders_lanes_and_totals(self):
        telemetry = CrawlTelemetry(label="first", workers=8, search_rounds=3)
        big = telemetry.market("tencent")
        big.requests, big.records, big.timeouts = 120, 90, 2
        small = telemetry.market("wandoujia")
        small.requests, small.records = 30, 20
        report = telemetry.stats_report()
        lines = report.splitlines()
        assert "crawl telemetry [first]" in lines[0]
        assert "workers=8" in lines[0]
        # Lanes sort by request volume, totals close the table.
        assert lines[3].startswith("tencent")
        assert lines[4].startswith("wandoujia")
        assert lines[-1].startswith("total")
        assert f"{telemetry.total_requests:>10}" in lines[-1]
        # Fixed-width: every data row lines up with the header.
        assert len({len(line) for line in lines[1:]} - {len(lines[2])}) <= 1

    def test_stats_report_top_limits_rows(self):
        telemetry = CrawlTelemetry()
        for i, market_id in enumerate(["a", "b", "c"]):
            telemetry.market(market_id).requests = 10 - i
        report = telemetry.stats_report(top=1)
        assert "a" in report
        assert "\nb" not in report
        assert "\nc" not in report
        # The totals row still reflects every lane.
        assert f"{telemetry.total_requests:>10}" in report.splitlines()[-1]

    def test_stats_report_empty_campaign(self):
        report = CrawlTelemetry(label="empty").stats_report()
        assert "total" in report

    def test_stats_report_shows_not_found_column(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("baidu")
        lane.requests, lane.not_found = 100, 37
        report = telemetry.stats_report()
        assert "404s" in report.splitlines()[1]
        baidu_row = next(line for line in report.splitlines()
                         if line.startswith("baidu"))
        assert f"{37:>7}" in baidu_row
        assert f"{telemetry.total_not_found:>7}" in report.splitlines()[-1]

    def test_stats_report_wall_time_and_throughput_header(self):
        telemetry = CrawlTelemetry(label="first", workers=2)
        telemetry.market("baidu").requests = 500
        telemetry.wall_seconds = 2.5
        title = telemetry.stats_report().splitlines()[0]
        assert "wall=2.50s" in title
        assert "(200 req/s)" in title

    def test_stats_report_omits_wall_when_not_recorded(self):
        telemetry = CrawlTelemetry(label="first")
        telemetry.market("baidu").requests = 500
        assert "wall=" not in telemetry.stats_report().splitlines()[0]

    def test_stats_report_degraded_branch(self):
        telemetry = CrawlTelemetry(label="t")
        telemetry.market("tencent").requests = 10
        for market_id in ("oppo", "hiapk"):
            lane = telemetry.market(market_id)
            lane.requests = 5
            lane.health = "degraded"
        report = telemetry.stats_report()
        lines = report.splitlines()
        assert telemetry.degraded_markets() == ["hiapk", "oppo"]
        # The totals row flags the count; the footer names the markets.
        totals = next(line for line in lines if line.startswith("total"))
        assert "degraded:2" in totals
        assert "degraded markets (breaker quarantine): hiapk, oppo" in report

    def test_stats_report_dead_letters_branch(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("oppo")
        lane.requests, lane.dead_letters = 5, 3
        telemetry.market("baidu").dead_letters = 1
        assert "dead letters: 4" in telemetry.stats_report()

    def test_stats_report_clean_run_omits_failure_footers(self):
        telemetry = CrawlTelemetry(label="t")
        telemetry.market("baidu").requests = 5
        report = telemetry.stats_report()
        assert "dead letters:" not in report
        assert "degraded markets" not in report
        assert "limiter:" not in report  # no rate budgets recorded

    def test_stats_report_limiter_line_renders_effective_rate(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("tencent")
        lane.requests = 500
        lane.sim_days_backoff = 2.0  # 250 req/day effective
        lane.rate_budget = 1000.0
        telemetry.market("baidu").requests = 9  # unbudgeted: not listed
        report = telemetry.stats_report()
        assert "limiter: tencent 250.0/1000 req/d (25%)" in report
        assert "baidu" in report  # still in the lane table...
        assert "limiter: tencent" == report.splitlines()[-1][:16]

    def test_stats_report_limiter_burst_when_no_waits(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("oppo")
        lane.requests = 42
        lane.rate_budget = 500.0  # budgeted but never paced or backed off
        assert "limiter: oppo burst (42 req, no waits)" in telemetry.stats_report()


class TestRegistryView:
    def test_counters_shared_with_registry_export(self):
        registry = MetricsRegistry()
        telemetry = CrawlTelemetry(label="first", workers=4, registry=registry)
        lane = telemetry.market("baidu")
        lane.requests += 11
        lane.records += 2
        telemetry.observe_queue_depth(9, at=1.5)
        docs = {(d["name"], d["labels"].get("market")): d
                for d in registry.to_dicts()}
        assert docs[("crawl_requests_total", "baidu")]["value"] == 11
        assert docs[("crawl_records_total", "baidu")]["value"] == 2
        assert docs[("crawl_queue_depth", None)]["samples"] == [[1.5, 9.0]]
        assert docs[("crawl_workers", None)]["value"] == 4

    def test_from_registry_rebuilds_identical_report(self):
        registry = MetricsRegistry()
        telemetry = CrawlTelemetry(label="first", workers=4, registry=registry)
        lane = telemetry.market("baidu")
        lane.requests, lane.records, lane.not_found = 11, 2, 1
        lane.rate_budget = 800.0  # the limiter footer must re-hydrate too
        telemetry.market("oppo").health = "degraded"
        telemetry.search_rounds = 3
        telemetry.wall_seconds = 1.25

        rehydrated = MetricsRegistry()
        rehydrated.load_dicts(registry.to_dicts())
        view = CrawlTelemetry.from_registry(
            "first", rehydrated, markets=["baidu", "oppo"]
        )
        assert view.stats_report() == telemetry.stats_report()
        assert view.workers == 4
        assert view.search_rounds == 3
        assert view.wall_seconds == 1.25

    def test_from_registry_writes_nothing(self):
        registry = MetricsRegistry()
        CrawlTelemetry(label="first", workers=8, registry=registry)
        view = CrawlTelemetry.from_registry("first", registry)
        # Attaching the view must not clobber the recorded gauges.
        assert view.workers == 8
