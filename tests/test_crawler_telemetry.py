"""Tests for the crawl telemetry layer."""

from repro.crawler.telemetry import CrawlTelemetry, MarketTelemetry
from repro.net.client import ClientStats


class TestMarketTelemetry:
    def test_fold_client_accumulates(self):
        lane = MarketTelemetry("tencent")
        delta = ClientStats(
            requests=10,
            retries=3,
            rate_limited=1,
            timeouts=2,
            malformed=1,
            failures=1,
            sim_days_slept=0.25,
        )
        lane.fold_client(delta)
        lane.fold_client(delta)
        assert lane.requests == 20
        assert lane.retries == 6
        assert lane.rate_limited == 2
        assert lane.timeouts == 4
        assert lane.malformed == 2
        assert lane.failures == 2
        assert lane.sim_days_backoff == 0.5


class TestCrawlTelemetry:
    def test_market_lazily_creates_lanes(self):
        telemetry = CrawlTelemetry(label="t")
        lane = telemetry.market("baidu")
        assert lane.market_id == "baidu"
        assert telemetry.market("baidu") is lane
        assert set(telemetry.markets) == {"baidu"}

    def test_queue_peak_tracks_maximum(self):
        telemetry = CrawlTelemetry()
        for depth in (3, 9, 4):
            telemetry.observe_queue_depth(depth)
        assert telemetry.queue_peak == 9

    def test_aggregates(self):
        telemetry = CrawlTelemetry()
        a = telemetry.market("a")
        a.requests, a.retries, a.records = 10, 2, 5
        a.rate_limited, a.timeouts, a.malformed = 1, 1, 1
        b = telemetry.market("b")
        b.requests, b.retries, b.records = 4, 1, 2
        assert telemetry.total_requests == 14
        assert telemetry.total_retries == 3
        assert telemetry.total_records == 7
        assert telemetry.total_faults_absorbed == 6

    def test_stats_report_renders_lanes_and_totals(self):
        telemetry = CrawlTelemetry(label="first", workers=8, search_rounds=3)
        big = telemetry.market("tencent")
        big.requests, big.records, big.timeouts = 120, 90, 2
        small = telemetry.market("wandoujia")
        small.requests, small.records = 30, 20
        report = telemetry.stats_report()
        lines = report.splitlines()
        assert "crawl telemetry [first]" in lines[0]
        assert "workers=8" in lines[0]
        # Lanes sort by request volume, totals close the table.
        assert lines[3].startswith("tencent")
        assert lines[4].startswith("wandoujia")
        assert lines[-1].startswith("total")
        assert f"{telemetry.total_requests:>10}" in lines[-1]
        # Fixed-width: every data row lines up with the header.
        assert len({len(line) for line in lines[1:]} - {len(lines[2])}) <= 1

    def test_stats_report_top_limits_rows(self):
        telemetry = CrawlTelemetry()
        for i, market_id in enumerate(["a", "b", "c"]):
            telemetry.market(market_id).requests = 10 - i
        report = telemetry.stats_report(top=1)
        assert "a" in report
        assert "\nb" not in report
        assert "\nc" not in report
        # The totals row still reflects every lane.
        assert f"{telemetry.total_requests:>10}" in report.splitlines()[-1]

    def test_stats_report_empty_campaign(self):
        report = CrawlTelemetry(label="empty").stats_report()
        assert "total" in report
