"""Tests for the crawl worker-pool model."""

import pytest

from repro.crawler.workers import WorkerPool


class TestWorkerPool:
    def test_paper_fleet_scale(self):
        # ~4x10^8 requests over the default fleet lands near the paper's
        # 15-day campaign.
        pool = WorkerPool()
        assert pool.duration_days(400_000_000) == pytest.approx(16.0)

    def test_minimum_duration(self):
        pool = WorkerPool(minimum_days=0.5)
        assert pool.duration_days(10) == 0.5

    def test_linear_in_requests(self):
        pool = WorkerPool()
        assert pool.duration_days(2 * 10**8) * 2 == pytest.approx(
            pool.duration_days(4 * 10**8)
        )

    def test_more_workers_faster(self):
        small = WorkerPool(workers=10)
        large = WorkerPool(workers=100)
        assert large.duration_days(10**9) < small.duration_days(10**9)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(requests_per_worker_day=0)
        with pytest.raises(ValueError):
            WorkerPool().duration_days(-1)


class TestDerivedCrawlDuration:
    def test_crawl_with_derived_duration(self):
        from repro.crawler.crawler import CrawlCoordinator
        from repro.ecosystem.generator import EcosystemGenerator
        from repro.markets.server import MarketServer
        from repro.markets.store import build_stores
        from repro.util.simtime import SimClock

        world = EcosystemGenerator(seed=71, scale=0.0002).generate()
        stores = build_stores(world)
        clock = SimClock()
        start = clock.now
        servers = {m: MarketServer(s, clock) for m, s in stores.items()}
        coordinator = CrawlCoordinator(
            servers, clock, download_apks=False,
            worker_pool=WorkerPool(minimum_days=0.25),
        )
        coordinator.crawl("derived", duration_days=None)
        # A tiny corpus crawls fast but still pays campaign overhead.
        assert clock.now - start >= 0.25
        assert clock.now - start < 15.0
