"""End-to-end determinism: one (seed, scale) reproduces everything."""


from repro import Study, StudyConfig


def _fingerprint(result):
    """A compact digest of a study's observable outputs."""
    snapshot = result.snapshot
    records = sorted(
        (r.market_id, r.package, r.version_code,
         r.downloads if r.downloads is not None else -1,
         r.md5 or "")
        for r in snapshot
    )
    from repro.util.rng import stable_hash64

    return stable_hash64("fingerprint", tuple(records))


class TestDeterminism:
    def test_same_config_same_everything(self):
        config = StudyConfig(seed=17, scale=0.0002)
        a = Study(config).run()
        b = Study(config).run()
        assert _fingerprint(a) == _fingerprint(b)
        assert a.presence == b.presence
        assert a.removal_outcome == b.removal_outcome

    def test_different_seed_different_world(self):
        a = Study(StudyConfig(seed=17, scale=0.0002)).run()
        b = Study(StudyConfig(seed=18, scale=0.0002)).run()
        assert _fingerprint(a) != _fingerprint(b)

    def test_analyses_deterministic(self):
        config = StudyConfig(seed=17, scale=0.0002)
        a = Study(config).run()
        b = Study(config).run()
        assert a.signature_clones.clone_units == b.signature_clones.clone_units
        assert a.code_clones.clone_units == b.code_clones.clone_units
        assert a.fakes.fake_units == b.fakes.fake_units
        ranks_a = {k: r.av_rank for k, r in a.vt_scan.reports.items()}
        ranks_b = {k: r.av_rank for k, r in b.vt_scan.reports.items()}
        assert ranks_a == ranks_b

    def test_reports_deterministic(self):
        from repro.experiments import run_experiment

        config = StudyConfig(seed=17, scale=0.0002)
        a = Study(config).run()
        b = Study(config).run()
        assert (
            run_experiment("table4", a).render()
            == run_experiment("table4", b).render()
        )
        assert (
            run_experiment("figure9", a).render()
            == run_experiment("figure9", b).render()
        )
