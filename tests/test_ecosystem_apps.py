"""Tests for app blueprints, code generation, and APK building."""

import numpy as np

from repro.android.permissions import platform_spec
from repro.apk.archive import parse_apk
from repro.ecosystem.apps import (
    AppBlueprint,
    AppVersion,
    Placement,
    build_apk,
    generate_own_code,
    perturb_own_code,
)
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import default_catalog
from repro.ecosystem.threats import ThreatProfile
from repro.markets.profiles import get_profile


def _blueprint(threat=None, libraries=(("com.umeng", 1),)):
    rng = np.random.default_rng(11)
    spec = platform_spec()
    own = generate_own_code(rng, spec, "com.test.app", ("CAMERA", "INTERNET"))
    dev = Developer(dev_id=5, name="Dev Studio", region="china")
    return AppBlueprint(
        app_id=0,
        package="com.test.app",
        display_name="Test App",
        category="Game",
        developer=dev,
        scope="china",
        popularity=0.5,
        quality=0.6,
        min_sdk=9,
        target_sdk=19,
        release_day=2000,
        versions=(
            AppVersion(1, "1.0.0", 2000),
            AppVersion(2, "1.1.0", 2200),
        ),
        own_code=own,
        libraries=tuple(libraries),
        permissions_requested=("CAMERA", "INTERNET", "SEND_SMS"),
        threat=threat,
    )


class TestOwnCode:
    def test_deterministic_for_template(self):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        spec = platform_spec()
        a = generate_own_code(rng_a, spec, "com.a", (), template_seed=7)
        b = generate_own_code(rng_b, spec, "com.a", (), template_seed=7)
        assert a.features == b.features
        assert a.blocks == b.blocks

    def test_unique_without_template(self):
        rng = np.random.default_rng(2)
        spec = platform_spec()
        a = generate_own_code(rng, spec, "com.a", ())
        b = generate_own_code(rng, spec, "com.b", ())
        assert a.features != b.features
        assert not (set(a.blocks) & set(b.blocks))

    def test_permission_features_injected(self):
        rng = np.random.default_rng(3)
        spec = platform_spec()
        code = generate_own_code(rng, spec, "com.a", ("SEND_SMS",))
        assert "SEND_SMS" in spec.permissions_for(code.features)

    def test_main_package_named_after_app(self):
        rng = np.random.default_rng(4)
        code = generate_own_code(rng, platform_spec(), "com.a.b", ())
        assert code.main_package == "com.a.b"


class TestPerturbOwnCode:
    def test_high_block_overlap(self):
        rng = np.random.default_rng(5)
        source = generate_own_code(rng, platform_spec(), "com.a", ("CAMERA",))
        clone = perturb_own_code(rng, source)
        shared = set(source.blocks) & set(clone.blocks)
        assert len(shared) / len(source.blocks) >= 0.85

    def test_small_feature_distance(self):
        from repro.analysis.clones import feature_distance

        rng = np.random.default_rng(6)
        source = generate_own_code(rng, platform_spec(), "com.a", ("CAMERA",))
        clone = perturb_own_code(rng, source)
        assert feature_distance(dict(source.features), dict(clone.features)) < 0.05

    def test_new_package_renames_main(self):
        rng = np.random.default_rng(7)
        source = generate_own_code(rng, platform_spec(), "com.a", ())
        clone = perturb_own_code(rng, source, new_package="com.z")
        assert clone.main_package == "com.z"


class TestBuildApk:
    def test_contains_own_lib_packages(self):
        blob = build_apk(_blueprint(), 1, get_profile("tencent"), default_catalog())
        parsed = parse_apk(blob)
        names = parsed.package_names()
        assert "com.test.app" in names
        assert "com.umeng" in names

    def test_version_selected(self):
        blueprint = _blueprint()
        parsed = parse_apk(
            build_apk(blueprint, 0, get_profile("tencent"), default_catalog())
        )
        assert parsed.manifest.version_code == 1
        parsed = parse_apk(
            build_apk(blueprint, 1, get_profile("tencent"), default_catalog())
        )
        assert parsed.manifest.version_code == 2

    def test_channel_file_injected(self):
        parsed = parse_apk(
            build_apk(_blueprint(), 1, get_profile("tencent"), default_catalog())
        )
        names = [entry.name for entry in parsed.meta_inf]
        assert "META-INF/txchannel" in names

    def test_md5_differs_across_markets_same_version(self):
        blueprint = _blueprint()
        a = parse_apk(build_apk(blueprint, 1, get_profile("tencent"), default_catalog()))
        b = parse_apk(build_apk(blueprint, 1, get_profile("baidu"), default_catalog()))
        assert a.md5 != b.md5
        assert a.package_digests() == b.package_digests()  # §5.3: channel only

    def test_360_packs_the_apk(self):
        parsed = parse_apk(
            build_apk(_blueprint(), 1, get_profile("market360"), default_catalog())
        )
        assert parsed.obfuscated_by == "360jiagubao"
        assert all(
            name.startswith("o.") or name == "com.qihoo.util"
            for name in parsed.package_names()
        )

    def test_payload_embedded_for_threats(self):
        threat = ThreatProfile("kuguo", 2)
        parsed = parse_apk(
            build_apk(_blueprint(threat=threat), 1, get_profile("tencent"),
                      default_catalog())
        )
        assert "com.kuguo.push" in parsed.package_names()

    def test_signature_comes_from_developer(self):
        blueprint = _blueprint()
        parsed = parse_apk(
            build_apk(blueprint, 1, get_profile("tencent"), default_catalog())
        )
        assert parsed.signer_fingerprint == blueprint.developer.fingerprint


class TestPlacement:
    def test_live_at(self):
        placement = Placement("tencent", 0, "Game", 100, 4.0, listed_day=2000)
        assert placement.live_at(2500)
        placement.removed_at = 2400.0
        assert placement.live_at(2399)
        assert not placement.live_at(2401)

    def test_blueprint_helpers(self):
        blueprint = _blueprint()
        assert blueprint.latest_version_index == 1
        assert blueprint.last_update_day == 2200
        assert blueprint.version_at(0).version_code == 1
