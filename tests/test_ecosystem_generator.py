"""Ground-truth calibration tests for the ecosystem generator.

These run their own tiny world (independent of the session study) and
assert the generator's ground truth lands near the paper's targets.
Detection-side fidelity is covered in test_calibration_shapes.py.
"""

import numpy as np
import pytest

from repro.ecosystem.apps import PROVENANCE_CB_CLONE, PROVENANCE_FAKE, PROVENANCE_SB_CLONE
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY, get_profile


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=11, scale=0.0004).generate()


class TestStructure:
    def test_every_app_has_developer(self, world):
        assert all(a.developer is not None for a in world.apps)

    def test_unlisted_apps_only_from_delisting(self, world):
        # An app may end up with no placements only when every hosting
        # market's vetting caught its malicious/grayware update.
        for app in world.apps:
            if not app.placements:
                aggressive = {
                    l.package for l in world.catalog.aggressive_libraries
                }
                assert app.threat is not None or any(
                    pkg in aggressive for pkg, _ in app.libraries
                )

    def test_app_ids_sequential(self, world):
        assert [a.app_id for a in world.apps] == list(range(len(world.apps)))

    def test_package_unique_per_market(self, world):
        seen = set()
        for app, placement in world.iter_placements():
            key = (placement.market_id, app.package)
            assert key not in seen
            seen.add(key)

    def test_version_indexes_valid(self, world):
        for app, placement in world.iter_placements():
            assert 0 <= placement.version_index < len(app.versions)

    def test_deterministic(self):
        a = EcosystemGenerator(seed=3, scale=0.0002).generate()
        b = EcosystemGenerator(seed=3, scale=0.0002).generate()
        assert a.summary() == b.summary()
        assert [x.package for x in a.apps[:50]] == [x.package for x in b.apps[:50]]

    def test_seed_changes_world(self):
        a = EcosystemGenerator(seed=3, scale=0.0002).generate()
        b = EcosystemGenerator(seed=4, scale=0.0002).generate()
        assert [x.package for x in a.apps[:50]] != [x.package for x in b.apps[:50]]


class TestMarketSizes:
    def test_sizes_proportional_to_paper(self, world):
        sizes = {m: world.market_size(m) for m in ALL_MARKET_IDS}
        # Spot-check ordering of the big markets.
        assert sizes[GOOGLE_PLAY] > sizes["pp25"] > sizes["tencent"]
        assert sizes["tencent"] > sizes["baidu"]

    def test_gp_single_store_share(self, world):
        gp_apps = world.apps_in_market(GOOGLE_PLAY)
        single = sum(1 for a in gp_apps if len(a.placements) == 1)
        assert 0.6 < single / len(gp_apps) < 0.9  # paper: 77%


class TestMisbehaviorGroundTruth:
    def test_malware_rates_near_table4(self, world):
        for market in ("tencent", "pp25", GOOGLE_PLAY, "pconline"):
            apps = world.apps_in_market(market)
            rate = sum(1 for a in apps if a.threat is not None) / len(apps)
            target = get_profile(market).av10_rate / 100
            assert rate == pytest.approx(target, abs=max(0.04, target * 0.5))

    def test_gp_cleanest(self, world):
        def rate(market):
            apps = world.apps_in_market(market)
            return sum(1 for a in apps if a.threat is not None) / len(apps)

        gp = rate(GOOGLE_PLAY)
        assert all(rate(m) >= gp for m in ("tencent", "pconline", "oppo"))

    def test_clone_provenance_counts(self, world):
        summary = world.summary()
        assert summary["cb_clones"] > summary["sb_clones"] > 0

    def test_fakes_reference_popular_officials(self, world):
        fakes = [a for a in world.apps if a.provenance == PROVENANCE_FAKE]
        for fake in fakes:
            official = world.app(fake.related_app_id)
            assert official.popularity > 0.99
            assert fake.display_name == official.display_name
            assert fake.package != official.package

    def test_sb_clones_share_package_not_signature(self, world):
        for clone in world.apps:
            if clone.provenance != PROVENANCE_SB_CLONE:
                continue
            victim = world.app(clone.related_app_id)
            assert clone.package == victim.package
            assert clone.developer.fingerprint != victim.developer.fingerprint

    def test_cb_clones_new_package_similar_code(self, world):
        from repro.analysis.clones import block_overlap

        for clone in world.apps:
            if clone.provenance != PROVENANCE_CB_CLONE:
                continue
            victim = world.app(clone.related_app_id)
            assert clone.package != victim.package
            assert block_overlap(clone.own_code.blocks, victim.own_code.blocks) >= 0.85

    def test_repackaged_malware_share(self, world):
        malware = [a for a in world.apps if a.threat is not None]
        repack = sum(
            1 for a in malware
            if a.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE)
        )
        assert 0.15 < repack / len(malware) < 0.6  # paper: 38.3%

    def test_celebrities_seeded(self, world):
        packages = {a.package for a in world.apps}
        assert "com.ypt.merchant" in packages
        assert "com.zoner.android.eicar" in packages
        ypt = world.find_by_package("com.ypt.merchant")[0]
        assert ypt.threat.family == "ramnit"
        assert set(ypt.placements) == {"tencent", "wandoujia", "oppo", "pp25", "liqu"}


class TestVetting:
    def test_vetting_log_populated(self, world):
        assert world.vetting_log
        rejections = [r for r in world.vetting_log if not r.accepted]
        assert rejections  # strict markets do reject submissions

    def test_lax_markets_never_reject_threats(self, world):
        for record in world.vetting_log:
            if record.market_id in ("hiapk", "pconline"):
                if "security" in record.reason or "copyright" in record.reason:
                    pytest.fail("unvetted market rejected a submission")


class TestMetadata:
    def test_chinese_apps_older(self, world):
        import datetime

        from repro.util.simtime import date_to_day

        boundary = date_to_day(datetime.date(2017, 1, 1))

        def pre2017(scope):
            apps = [a for a in world.apps if a.scope == scope]
            return np.mean([a.last_update_day < boundary for a in apps])

        assert pre2017("china") > pre2017("global")

    def test_min_sdk_reasonable(self, world):
        for app in world.apps:
            assert 1 <= app.min_sdk <= app.target_sdk

    def test_downloads_reported_per_profile(self, world):
        for app, placement in world.iter_placements():
            reports = get_profile(placement.market_id).reports_downloads
            if not reports:
                assert placement.downloads is None

    def test_fake_downloads_low(self, world):
        for app in world.apps:
            if app.provenance != PROVENANCE_FAKE:
                continue
            for placement in app.placements.values():
                if placement.downloads is not None:
                    assert placement.downloads < 1000


class TestRepackagingChains:
    """Adversarial repackaging: chains, shared keys, boosted families."""

    @pytest.fixture(scope="class")
    def adversarial(self):
        from repro.ecosystem.threats import RepackagingModel

        return EcosystemGenerator(
            seed=7, scale=0.0004, repackaging=RepackagingModel.adversarial()
        ).generate()

    def test_default_world_has_no_chains(self, world):
        # The paper-calibrated model clones legit apps only: every
        # repack sits at depth 1, everything else at depth 0.
        for app in world.apps:
            if app.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE):
                assert app.clone_depth == 1
            else:
                assert app.clone_depth == 0

    def test_explicit_default_model_is_bit_identical(self):
        # RepackagingModel.default() must consume the same RNG stream as
        # passing nothing — the calibrated world cannot drift.
        from repro.ecosystem.threats import RepackagingModel

        implicit = EcosystemGenerator(seed=3, scale=0.0002).generate()
        explicit = EcosystemGenerator(
            seed=3, scale=0.0002, repackaging=RepackagingModel.default()
        ).generate()
        assert implicit.content_digest() == explicit.content_digest()

    def test_adversarial_builds_deep_chains(self, adversarial):
        depths = {}
        for app in adversarial.apps:
            depths[app.clone_depth] = depths.get(app.clone_depth, 0) + 1
        assert max(depths) >= 3
        # Chains thin out monotonically: every B -> C needs an A -> B.
        for depth in range(2, max(depths) + 1):
            assert depths[depth] <= depths[depth - 1]

    def test_chain_provenance_walkable(self, adversarial):
        # related_app_id points one link up; following it must land on
        # an app exactly one depth shallower, all the way to a legit root.
        for app in adversarial.apps:
            if app.clone_depth == 0:
                continue
            parent = adversarial.app(app.related_app_id)
            assert parent.clone_depth == app.clone_depth - 1
            if app.provenance == PROVENANCE_CB_CLONE and app.clone_depth > 1:
                assert parent.provenance == PROVENANCE_CB_CLONE

    def test_adjacent_chain_links_never_share_keys(self, adversarial):
        # A repack signed with its victim's key would read as legitimate
        # reuse and hide the clone from both detectors.
        for app in adversarial.apps:
            if app.provenance != PROVENANCE_CB_CLONE:
                continue
            victim = adversarial.app(app.related_app_id)
            assert app.developer.fingerprint != victim.developer.fingerprint

    def test_shared_signing_key_clusters(self, adversarial):
        # Persona key reuse concentrates many clones under few keys.
        by_key = {}
        for app in adversarial.apps:
            if app.provenance == PROVENANCE_CB_CLONE:
                fp = app.developer.fingerprint
                by_key[fp] = by_key.get(fp, 0) + 1
        assert max(by_key.values()) >= 20

    def test_family_boost_multiplies_clone_supply(self, world, adversarial):
        # Same scale (0.0004): the adversarial model's 4x family boost
        # must produce several times the default world's CB clones.
        default_cb = world.summary()["cb_clones"]
        boosted_cb = adversarial.summary()["cb_clones"]
        assert boosted_cb >= 2.5 * default_cb

    def test_adversarial_world_deterministic(self):
        from repro.ecosystem.threats import RepackagingModel

        a = EcosystemGenerator(
            seed=5, scale=0.0002, repackaging=RepackagingModel.adversarial()
        ).generate()
        b = EcosystemGenerator(
            seed=5, scale=0.0002, repackaging=RepackagingModel.adversarial()
        ).generate()
        assert a.content_digest() == b.content_digest()


class TestTemplateSpam:
    """App-factory spam: sub-threshold shared code, adversarial only."""

    @pytest.fixture(scope="class")
    def adversarial(self):
        from repro.ecosystem.threats import RepackagingModel

        return EcosystemGenerator(
            seed=7, scale=0.0004, repackaging=RepackagingModel.adversarial()
        ).generate()

    def test_absent_from_default_world(self, world):
        assert world.summary()["template_spam"] == 0

    def test_present_in_adversarial_world(self, adversarial):
        assert adversarial.summary()["template_spam"] > 0

    def test_each_studio_signs_with_one_key(self, adversarial):
        keys_by_studio = {}
        for app in adversarial.apps:
            if app.provenance == "template_spam":
                assert app.template_id is not None
                keys_by_studio.setdefault(app.template_id, set()).add(
                    app.developer.fingerprint
                )
        assert keys_by_studio
        for fingerprints in keys_by_studio.values():
            assert len(fingerprints) == 1

    def test_studio_mates_share_sub_threshold_code(self, adversarial):
        # The whole point: enough shared blocks to collide in posting
        # lists, never enough overlap to be a reportable clone.
        from repro.analysis.clones import block_overlap

        by_studio = {}
        for app in adversarial.apps:
            if app.provenance == "template_spam":
                by_studio.setdefault(app.template_id, []).append(app)
        for mates in by_studio.values():
            for a, b in zip(mates[:30], mates[1:31]):
                overlap = block_overlap(a.own_code.blocks, b.own_code.blocks)
                assert overlap < 0.7
                shared = set(a.own_code.blocks) & set(b.own_code.blocks)
                assert shared  # but they do share template code
