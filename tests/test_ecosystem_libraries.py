"""Tests for the third-party library catalog."""

import pytest

from repro.ecosystem.libraries import Library, LibraryCatalog, default_catalog


class TestCatalogStructure:
    def test_table2_leaders_present(self):
        catalog = default_catalog()
        for package in (
            "com.google.android.gms", "com.google.ads", "com.facebook",
            "org.apache", "com.tencent.mm", "com.baidu", "com.umeng",
            "com.alipay", "com.nostra13",
        ):
            assert catalog.get(package).package == package

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError):
            default_catalog().get("com.not.a.lib")

    def test_duplicate_packages_rejected(self):
        lib = Library("com.dup", "v", "Development", 0.1, 0.1)
        with pytest.raises(ValueError):
            LibraryCatalog([lib, lib])

    def test_ad_flag(self):
        catalog = default_catalog()
        assert catalog.get("com.google.ads").is_ad
        assert catalog.get("com.umeng").is_ad  # dual Analytics/Ads SDK
        assert not catalog.get("com.google.gson").is_ad

    def test_aggressive_libraries_are_ads_with_families(self):
        for lib in default_catalog().aggressive_libraries:
            assert lib.is_ad
            assert lib.grayware_family

    def test_usage_by_region(self):
        catalog = default_catalog()
        gms = catalog.get("com.google.android.gms")
        assert catalog.usage(gms, "global") == pytest.approx(0.661)
        assert catalog.usage(gms, "china") == pytest.approx(0.205)

    def test_expected_counts_match_figure5(self):
        catalog = default_catalog()
        # Named + tail expectations land near the paper's per-app
        # averages: ~8 for Google Play, ~12.5 for Chinese markets.
        assert 6.5 < catalog.expected_count("global") < 9.5
        assert 9.5 < catalog.expected_count("china") < 14.0

    def test_tier_split(self):
        catalog = default_catalog()
        named = catalog.expected_count("global", "named")
        tail = catalog.expected_count("global", "tail")
        assert named + tail == pytest.approx(catalog.expected_count("global"))
        with pytest.raises(ValueError):
            catalog.expected_count("global", "bogus")

    def test_tail_usage_below_table2_floor(self):
        # No tail library may displace the paper's top-10 entries.
        catalog = default_catalog()
        for lib in catalog:
            if lib.tail:
                assert lib.gp_usage < 0.09
                assert lib.cn_usage < 0.106


class TestVersionCode:
    def test_cached(self):
        catalog = default_catalog()
        a = catalog.version_code("com.umeng", 0)
        b = catalog.version_code("com.umeng", 0)
        assert a is b

    def test_version_out_of_range(self):
        with pytest.raises(ValueError):
            default_catalog().version_code("com.umeng", 99)

    def test_versions_overlap_but_differ(self):
        catalog = default_catalog()
        v0 = set(catalog.version_code("com.google.ads", 0).features)
        v1 = set(catalog.version_code("com.google.ads", 1).features)
        assert v0 != v1
        overlap = len(v0 & v1) / max(len(v0), len(v1))
        assert overlap > 0.5  # versions share most code

    def test_digest_differs_across_versions(self):
        catalog = default_catalog()
        d0 = catalog.version_code("com.umeng", 0).as_code_package().feature_digest
        d1 = catalog.version_code("com.umeng", 1).as_code_package().feature_digest
        assert d0 != d1

    def test_code_package_carries_library_name(self):
        code = default_catalog().version_code("com.baidu", 2).as_code_package()
        assert code.name == "com.baidu"
        assert code.blocks

    def test_permission_features_present(self):
        from repro.android.permissions import platform_spec

        spec = platform_spec()
        catalog = default_catalog()
        code = catalog.version_code("com.umeng", 3)
        perms = spec.permissions_for(code.features)
        assert "READ_PHONE_STATE" in perms
