"""Tests for download and rating sampling."""

import numpy as np
import pytest

from repro.ecosystem.popularity import (
    downloads_bin_index,
    popularity_from_rank,
    sample_listing_downloads,
    sample_listing_rating,
)
from repro.markets.profiles import get_profile


class TestBinIndex:
    def test_edges(self):
        assert downloads_bin_index(0) == 0
        assert downloads_bin_index(9) == 0
        assert downloads_bin_index(10) == 1
        assert downloads_bin_index(999) == 2
        assert downloads_bin_index(1_000_000) == 6
        assert downloads_bin_index(5_000_000_000) == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            downloads_bin_index(-1)


class TestPopularityFromRank:
    def test_bounds(self):
        assert 0 < popularity_from_rank(0, 10) < popularity_from_rank(9, 10) < 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            popularity_from_rank(10, 10)


class TestSampleDownloads:
    def test_non_reporting_market(self):
        rng = np.random.default_rng(1)
        assert sample_listing_downloads(get_profile("xiaomi"), 0.5, rng) is None

    def test_popular_apps_get_more(self):
        rng = np.random.default_rng(2)
        profile = get_profile("google_play")
        low = np.median([sample_listing_downloads(profile, 0.05, rng) for _ in range(300)])
        high = np.median([sample_listing_downloads(profile, 0.97, rng) for _ in range(300)])
        assert high > low

    def test_distribution_matches_profile_row(self):
        from repro.ecosystem.popularity import downloads_bin_index as bidx

        rng = np.random.default_rng(3)
        profile = get_profile("huawei")
        samples = [
            sample_listing_downloads(profile, float(rng.random()), rng)
            for _ in range(4000)
        ]
        counts = np.zeros(7)
        for s in samples:
            counts[bidx(s)] += 1
        shares = counts / counts.sum()
        target = np.asarray(profile.download_bin_shares)
        target = target / target.sum()
        # Percentile noise blurs bins slightly; shape must still match.
        assert np.abs(shares - target).max() < 0.08


class TestSampleRating:
    def test_pconline_default(self):
        rng = np.random.default_rng(4)
        profile = get_profile("pconline")
        ratings = [
            sample_listing_rating(profile, 0.5, 50, rng) for _ in range(300)
        ]
        assert any(r == 3.0 for r in ratings)  # the default-3 artifact

    def test_unrated_is_none_elsewhere(self):
        rng = np.random.default_rng(5)
        profile = get_profile("tencent")
        ratings = [sample_listing_rating(profile, 0.5, 10, rng) for _ in range(200)]
        assert any(r is None for r in ratings)

    def test_rating_range(self):
        rng = np.random.default_rng(6)
        profile = get_profile("google_play")
        for _ in range(200):
            rating = sample_listing_rating(profile, 0.8, 10**6, rng)
            if rating is not None:
                assert 1.0 <= rating <= 5.0

    def test_popular_apps_rated_more_often(self):
        rng = np.random.default_rng(7)
        profile = get_profile("tencent")
        low = sum(
            sample_listing_rating(profile, 0.3, 50, rng) is None for _ in range(400)
        )
        high = sum(
            sample_listing_rating(profile, 0.9, 10**6, rng) is None for _ in range(400)
        )
        assert high < low

    def test_quality_drives_rating(self):
        rng = np.random.default_rng(8)
        profile = get_profile("google_play")
        bad = np.mean([
            r for r in (sample_listing_rating(profile, 0.05, 10**6, rng)
                        for _ in range(300)) if r
        ])
        good = np.mean([
            r for r in (sample_listing_rating(profile, 0.95, 10**6, rng)
                        for _ in range(300)) if r
        ])
        assert good > bad
