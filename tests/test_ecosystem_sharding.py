"""Sharded generation and the segment cache: the determinism contracts.

The sharding contract (DESIGN.md): the generated ``World`` is
bit-identical at any ``gen_workers`` width, because every parallel work
item draws from an RNG substream keyed by its stable identity (app
index, listing key) — never by shard or worker.  The segment-cache
contract: every served APK blob is byte-identical with the cache on or
off.  Both are checked here at test scale; the enforced performance
floors live in ``benchmarks/test_bench_worldgen.py``.
"""

import hashlib

import pytest

from repro.apk.archive import SegmentCache, parse_apk, serialize_apk
from repro.apk.models import Apk, CodePackage, Manifest
from repro.core.config import StudyConfig
from repro.crawler.journal import CrawlJournal
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.sharding import ShardPool, resolve_gen_workers
from repro.markets.profiles import ALL_MARKET_IDS
from repro.markets.store import build_stores

from test_crawler_journal import assert_records_identical, crawl_once


class TestShardedDeterminism:
    @pytest.mark.parametrize("seed,scale", [(7, 0.0003), (99, 0.0005)])
    def test_world_digest_identical_at_any_width(self, seed, scale):
        digests = {
            workers: EcosystemGenerator(
                seed, scale, gen_workers=workers
            ).generate().content_digest()
            for workers in (1, 2, 8)
        }
        assert len(set(digests.values())) == 1, digests

    def test_digest_distinguishes_worlds(self):
        a = EcosystemGenerator(7, 0.0003).generate()
        b = EcosystemGenerator(8, 0.0003).generate()
        assert a.content_digest() != b.content_digest()

    def test_serial_fallback_identical(self):
        world = EcosystemGenerator(7, 0.0003, gen_workers=4)
        # Sabotage the pool before it spawns: map_chunks must fall back
        # to the in-process path and still produce the identical world.
        reference = EcosystemGenerator(7, 0.0003).generate().content_digest()
        original = ShardPool._ensure_executor
        try:
            ShardPool._ensure_executor = lambda self: None
            assert world.generate().content_digest() == reference
        finally:
            ShardPool._ensure_executor = original

    def test_resolve_gen_workers(self):
        assert resolve_gen_workers(3) == 3
        assert 1 <= resolve_gen_workers(0) <= 8
        with pytest.raises(ValueError):
            resolve_gen_workers(-1)

    def test_config_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            StudyConfig(gen_workers=0)


class TestSegmentCache:
    @pytest.fixture(scope="class")
    def world(self):
        return EcosystemGenerator(seed=17, scale=0.0003, gen_workers=2).generate()

    def test_blobs_byte_identical_cache_on_vs_off(self, world):
        segments = SegmentCache()
        warm = build_stores(world, segments=segments)
        cold = build_stores(world, segment_cache=False)
        compared = 0
        for market_id in ALL_MARKET_IDS:
            for listing in warm[market_id].iter_live(0.0):
                a = warm[market_id].apk_bytes(listing.package, 0.0)
                b = cold[market_id].apk_bytes(listing.package, 0.0)
                assert a == b, (market_id, listing.package)
                if a is not None:
                    assert (
                        hashlib.md5(a).hexdigest() == hashlib.md5(b).hexdigest()
                    )
                    compared += 1
        # The fan-out is real: far more placements than distinct segments.
        stats = segments.stats()
        assert compared > 0
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert stats["hits"] > stats["misses"]

    def test_obfuscating_market_bypasses_cache(self, world):
        # 360's Jiagu packing rewrites package names per app, so its
        # blobs never touch the shared cache — and still parse.
        segments = SegmentCache()
        stores = build_stores(world, segments=segments)
        store = stores["market360"]
        served = 0
        for listing in store.iter_live(0.0):
            blob = store.apk_bytes(listing.package, 0.0)
            if blob is not None:
                assert parse_apk(blob).obfuscated_by is not None
                served += 1
        assert served > 0
        assert segments.stats()["hits"] == 0

    def test_splice_matches_cold_serialization(self):
        apk = Apk(
            manifest=Manifest(
                package="com.example.app",
                version_code=7,
                version_name="1.2.3",
                min_sdk=9,
                target_sdk=19,
                permissions=("android.permission.INTERNET",),
            ),
            packages=(
                CodePackage(name="com.example.app", features={3: 2, 1: 5},
                            blocks=(11, 12)),
                CodePackage(name="com.lib", features={7: 1}, blocks=(13,)),
            ),
            signer_fingerprint="fp",
            signer_name="Dev — Co.",  # non-ASCII exercises ensure_ascii parity
        )
        segments = SegmentCache()
        first = serialize_apk(apk, segments)
        assert first == serialize_apk(apk)
        # Second pass is all hits and still identical.
        assert serialize_apk(apk, segments) == first
        assert segments.stats()["hits"] == 2


class TestMemoization:
    def test_feature_digest_memo(self):
        pkg = CodePackage(name="a", features={1: 2}, blocks=(3,))
        assert pkg.feature_digest == pkg.feature_digest
        fresh = CodePackage(name="a", features={1: 2}, blocks=(3,))
        assert fresh.feature_digest == pkg.feature_digest

    def test_merged_features_memo(self):
        apk = Apk(
            manifest=Manifest(package="p", version_code=1, version_name="1",
                              min_sdk=9, target_sdk=9),
            packages=(CodePackage(name="p", features={1: 2}),
                      CodePackage(name="q", features={1: 3, 4: 1})),
            signer_fingerprint="fp",
            signer_name="dev",
        )
        parsed = parse_apk(serialize_apk(apk))
        merged = parsed.merged_features()
        assert merged == {1: 5, 4: 1}
        assert parsed.merged_features() is merged  # memoized

    def test_own_code_package_memo(self):
        from repro.ecosystem.apps import OwnCode

        own = OwnCode(main_package="com.x", features={5: 1}, blocks=(9,))
        assert own.as_code_package() is own.as_code_package()


class TestShardedWorldCrawl:
    """The PR 2 checkpoint contract holds over a sharded-generated world."""

    @pytest.fixture(scope="class")
    def world(self):
        return EcosystemGenerator(seed=31, scale=0.0002, gen_workers=2).generate()

    def test_kill_and_resume_matches_uninterrupted(self, world, tmp_path_factory):
        baseline, _ = crawl_once(world, None)

        root = tmp_path_factory.mktemp("journal")
        crawl_once(world, root)
        # Simulate a crash mid-campaign: truncate every lane's WAL to
        # half its records, then resume from the damaged journal.
        truncated = 0
        for lane_file in root.rglob("*.jsonl"):
            lines = lane_file.read_text().splitlines(keepends=True)
            keep = len(lines) // 2
            lane_file.write_text("".join(lines[:keep]))
            truncated += len(lines) - keep
        assert truncated > 0

        resumed, _ = crawl_once(world, root, resume=True)
        assert_records_identical(resumed, baseline)

    def test_journal_replay_identical(self, world, tmp_path):
        first, _ = crawl_once(world, tmp_path)
        replayed, _ = crawl_once(world, tmp_path, resume=True)
        assert_records_identical(replayed, first)
