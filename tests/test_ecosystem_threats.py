"""Tests for malware families and payload generation."""

import pytest

from repro.ecosystem.threats import (
    CHINESE_FAMILY_WEIGHTS,
    GP_FAMILY_WEIGHTS,
    MALWARE_FAMILIES,
    ThreatFeed,
    ThreatProfile,
    payload_code,
)


class TestFamilies:
    def test_figure12_families_present(self):
        for family in ("kuguo", "airpush", "smsreg", "revmob", "dowgin",
                       "gappusin", "secapk", "youmi", "leadbolt", "adwo",
                       "domob", "commplat", "adend", "smspay", "ramnit"):
            assert family in MALWARE_FAMILIES

    def test_weights_reference_known_families(self):
        for weights in (CHINESE_FAMILY_WEIGHTS, GP_FAMILY_WEIGHTS):
            for family in weights:
                assert family in MALWARE_FAMILIES

    def test_kuguo_leads_chinese(self):
        assert max(CHINESE_FAMILY_WEIGHTS, key=CHINESE_FAMILY_WEIGHTS.get) == "kuguo"

    def test_airpush_leads_gp(self):
        assert max(GP_FAMILY_WEIGHTS, key=GP_FAMILY_WEIGHTS.get) == "airpush"
        assert GP_FAMILY_WEIGHTS["revmob"] > GP_FAMILY_WEIGHTS["leadbolt"]

    def test_breadth_ordering(self):
        # High-profile families are detected far more broadly than adware.
        assert MALWARE_FAMILIES["ramnit"].breadth > 0.6
        assert MALWARE_FAMILIES["kuguo"].breadth < 0.3
        assert (
            MALWARE_FAMILIES["smsreg"].breadth > MALWARE_FAMILIES["kuguo"].breadth
        )

    def test_breadth_validation(self):
        from repro.ecosystem.threats import MalwareFamily

        with pytest.raises(ValueError):
            MalwareFamily("x", "trojan", 0.0, "com.x")


class TestPayloadCode:
    def test_deterministic(self):
        a = payload_code("kuguo", 3)
        b = payload_code("kuguo", 3)
        assert a.features == b.features
        assert a.feature_digest == b.feature_digest

    def test_variant_changes_digest(self):
        assert payload_code("kuguo", 0).feature_digest != payload_code("kuguo", 1).feature_digest

    def test_family_changes_digest(self):
        assert payload_code("kuguo", 0).feature_digest != payload_code("dowgin", 0).feature_digest

    def test_payload_package_name(self):
        assert payload_code("kuguo", 0).name == "com.kuguo.push"

    def test_payload_is_small(self):
        # Payloads must stay small relative to host code so repacks stay
        # within WuKong's clone-distance threshold.
        for family in MALWARE_FAMILIES:
            total = payload_code(family, 0).total_features()
            assert total <= 30

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            payload_code("nosuchfamily", 0)


class TestThreatFeed:
    def test_records_variants(self):
        feed = ThreatFeed()
        feed.record(ThreatProfile("kuguo", 1))
        feed.record(ThreatProfile("kuguo", 1))
        feed.record(ThreatProfile("ramnit", 0))
        assert len(feed) == 2
        assert feed.count("kuguo") == 2
        assert ("ramnit", 0) in feed.variants

    def test_profile_family_def(self):
        profile = ThreatProfile("ramnit", 5, repackaged=True)
        assert profile.family_def.kind == "high_profile"
        assert profile.repackaged


class TestClonerPersona:
    def test_validation(self):
        from repro.ecosystem.threats import ClonerPersona

        with pytest.raises(ValueError):
            ClonerPersona("x", chain_share=1.5)
        with pytest.raises(ValueError):
            ClonerPersona("x", key_reuse=-0.1)
        with pytest.raises(ValueError):
            ClonerPersona("x", max_chain_depth=0)

    def test_operates_everywhere_by_default(self):
        from repro.ecosystem.threats import ClonerPersona

        persona = ClonerPersona("x")
        assert persona.operates_in("tencent")
        assert persona.operates_in("google_play")

    def test_home_markets_restrict(self):
        from repro.ecosystem.threats import ClonerPersona

        persona = ClonerPersona("x", home_markets=("baidu",))
        assert persona.operates_in("baidu")
        assert not persona.operates_in("tencent")


class TestRepackagingModel:
    def test_profiles_dispatch(self):
        from repro.ecosystem.threats import RepackagingModel

        for profile in RepackagingModel.PROFILES:
            model = RepackagingModel.for_profile(profile)
            assert model.personas

    def test_unknown_profile_rejected(self):
        from repro.ecosystem.threats import RepackagingModel

        with pytest.raises(ValueError):
            RepackagingModel.for_profile("bogus")

    def test_default_is_inert(self):
        # The default persona must never branch into chain or key-reuse
        # draws — that would perturb the calibrated RNG stream.
        from repro.ecosystem.threats import RepackagingModel

        model = RepackagingModel.default()
        assert model.family_boost == 1.0
        assert len(model.personas) == 1
        (persona,) = model.personas
        assert persona.chain_share == 0.0
        assert persona.key_reuse == 0.0
        assert not persona.home_markets

    def test_adversarial_shape(self):
        from repro.ecosystem.threats import RepackagingModel

        model = RepackagingModel.adversarial()
        assert model.family_boost > 1.0
        assert any(p.chain_share > 0 for p in model.personas)
        assert any(p.key_reuse > 0 for p in model.personas)
        assert any(p.max_chain_depth >= 3 for p in model.personas)

    def test_needs_personas(self):
        from repro.ecosystem.threats import RepackagingModel

        with pytest.raises(ValueError):
            RepackagingModel(personas=())
        with pytest.raises(ValueError):
            RepackagingModel.default().__class__(
                personas=RepackagingModel.default().personas, family_boost=0.0
            )
