"""Tests for the experiment runner and per-experiment output shapes."""

import pytest

from repro.core.reports import FigureReport, TableReport
from repro.experiments import EXPERIMENT_IDS, run_all, run_experiment
from repro.experiments.runner import PAPER_EXPERIMENT_IDS
from repro.markets.profiles import ALL_MARKET_IDS


class TestRunner:
    def test_all_paper_artifacts_registered(self):
        # 6 tables + 13 figures, one experiment each.
        assert len(PAPER_EXPERIMENT_IDS) == 19
        assert {"table1", "table6", "figure1", "figure13"} <= set(EXPERIMENT_IDS)
        # Plus the section-level, longitudinal, and self-check extras.
        assert {"section52", "section53", "section64", "churn",
                "fidelity"} <= set(EXPERIMENT_IDS)

    def test_unknown_experiment(self, study):
        with pytest.raises(KeyError):
            run_experiment("table99", study)

    def test_run_all(self, study):
        reports = run_all(study)
        assert set(reports) == set(EXPERIMENT_IDS)
        for report in reports.values():
            assert isinstance(report, (TableReport, FigureReport))
            assert report.render()


class TestTables:
    def test_table1_rows(self, study):
        table = run_experiment("table1", study)
        assert len(table.rows) == 17
        names = table.column("market")
        assert "Google Play" in names and "App China" in names

    def test_table2_corpora(self, study):
        table = run_experiment("table2", study)
        corpora = set(table.column("corpus"))
        assert corpora == {"google_play", "chinese"}
        assert all(0 <= u <= 100 for u in table.column("usage_pct"))

    def test_table3_has_average_row(self, study):
        table = run_experiment("table3", study)
        assert table.rows[-1][0] == "Average"
        assert len(table.rows) == 18

    def test_table4_rates_ordered(self, study):
        table = run_experiment("table4", study)
        for row in table.rows:
            _, ge1, _, ge10, _, ge20, _ = row
            assert ge1 >= ge10 >= ge20

    def test_table5_ranked(self, study):
        table = run_experiment("table5", study)
        ranks = table.column("av_rank")
        assert ranks == sorted(ranks, reverse=True)
        assert len(ranks) <= 10

    def test_table6_excludes_dead_markets(self, study):
        table = run_experiment("table6", study)
        names = table.column("market")
        assert "HiApk" not in names
        assert "OPPO Market" not in names
        assert "Google Play" in names


class TestFigures:
    def test_figure1_matrix(self, study):
        figure = run_experiment("figure1", study)
        matrix = figure.data["matrix"]
        assert set(matrix) == set(ALL_MARKET_IDS)
        for dist in matrix.values():
            assert abs(sum(dist.values()) - 1.0) < 1e-6

    def test_figure2_rows_normalized(self, study):
        figure = run_experiment("figure2", study)
        for market, row in figure.data["measured"].items():
            total = sum(row)
            assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0

    def test_figure3_buckets(self, study):
        figure = run_experiment("figure3", study)
        assert len(figure.data["google_play"]) == len(figure.data["buckets"])

    def test_figure6_cdfs(self, study):
        figure = run_experiment("figure6", study)
        xs, cdf = figure.data["cdfs"]["google_play"]
        assert cdf == sorted(cdf)
        assert cdf[-1] == pytest.approx(1.0)

    def test_figure7_cdf_monotone(self, study):
        figure = run_experiment("figure7", study)
        cdf = figure.data["cdf"]
        values = [cdf[k] for k in sorted(cdf)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_figure8_shares(self, study):
        figure = run_experiment("figure8", study)
        assert 0 <= figure.data["multi_version_share"] <= 1
        assert 0 <= figure.data["shared_name_app_share"] <= 1

    def test_figure10_totals_consistent(self, study):
        figure = run_experiment("figure10", study)
        assert sum(figure.data["source_totals"].values()) == sum(
            figure.data["destination_totals"].values()
        )

    def test_figure11_buckets(self, study):
        figure = run_experiment("figure11", study)
        assert len(figure.data["buckets"]) == 11

    def test_figure12_shares_sum(self, study):
        figure = run_experiment("figure12", study)
        for corpus in ("chinese", "google_play"):
            shares = figure.data[corpus]
            if shares:
                assert sum(shares.values()) <= 1.0 + 1e-9

    def test_figure13_series_range(self, study):
        figure = run_experiment("figure13", study)
        for market, dims in figure.data["series"].items():
            for value in dims.values():
                assert 0.0 <= value <= 100.0


class TestSectionExperiments:
    def test_section52_shares(self, study):
        table = run_experiment("section52", study)
        rows = table.row_map()
        assert rows["Google Play"][1] > 50  # 77% single-store target

    def test_section53_identity(self, study):
        figure = run_experiment("section53", study)
        assert figure.data["explained_share"] > 0.9

    def test_section64_repackaged(self, study):
        figure = run_experiment("section64", study)
        assert 0.0 <= figure.data["repackaged_share"] <= 1.0
        assert figure.data["malware_units"] > 0

    def test_churn_without_second_snapshot(self, study):
        table = run_experiment("churn", study)
        assert not table.rows
        assert any("full_second_crawl" in note for note in table.notes)

    def test_fidelity_scorecard(self, study):
        table = run_experiment("fidelity", study)
        rows = {(r[0], r[1]): r[2] for r in table.rows}
        # Figure 2 rows are reproduced almost exactly by construction.
        assert rows[("figure2 download bins", "mean L1 distance")] < 0.15
        # Table 4 per-market malware rates land within a few points.
        assert rows[("table4 AV-rank >= 10", "MAE (pct points)")] < 4.0
        # Orderings track the paper.
        assert rows[("table4 AV-rank >= 10", "rank correlation")] > 0.7
        assert rows[("figure9 highest-version share", "rank correlation")] > 0.6
