"""Failure-injection tests: the crawl must survive flaky servers."""

import pytest

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.client import HttpClient
from repro.net.faults import FaultPlan
from repro.net.http import Request, ServerError
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=81, scale=0.0002).generate()


class TestFlakyServer:
    def test_flakiness_validated(self, world):
        stores = build_stores(world)
        with pytest.raises(ValueError):
            MarketServer(stores["tencent"], SimClock(), flakiness=1.5)

    def test_failures_injected_deterministically(self, world):
        clock = SimClock()
        stores = build_stores(world)
        server = MarketServer(stores["tencent"], clock, flakiness=0.2)
        statuses = [
            server.handle(Request("/categories")).status for _ in range(200)
        ]
        assert statuses.count(500) == server.transient_failures
        assert 15 < statuses.count(500) < 70  # ~20%

        # Same construction, same failure positions.
        server2 = MarketServer(build_stores(world)["tencent"], SimClock(),
                               flakiness=0.2)
        statuses2 = [
            server2.handle(Request("/categories")).status for _ in range(200)
        ]
        assert statuses == statuses2

    def test_client_retries_through_flakiness(self, world):
        clock = SimClock()
        server = MarketServer(build_stores(world)["tencent"], clock,
                              flakiness=0.2)
        client = HttpClient(server.handle, clock)
        # Every request eventually succeeds despite 20% transient 500s.
        for _ in range(50):
            assert client.get_json("/categories")
        assert client.stats.retries > 0

    def test_crawl_completes_with_flaky_markets(self, world):
        from repro.util.rng import stable_hash32

        clock = SimClock()
        stores = build_stores(world)
        servers = {
            m: MarketServer(s, clock, flakiness=0.05)
            for m, s in stores.items()
        }
        seeds = [
            listing.package
            for listing in stores["google_play"].iter_live(clock.now)
            if stable_hash32("privacygrade", listing.package) % 100 < 74
        ]
        coordinator = CrawlCoordinator(
            servers, clock, gp_seeds=seeds, download_apks=False
        )
        snapshot = coordinator.crawl("flaky", duration_days=1.0)
        # Coverage stays essentially complete; retries absorb the faults.
        for market_id, store in stores.items():
            if len(store) == 0:
                continue
            assert snapshot.market_size(market_id) >= 0.9 * len(store), market_id

def _crawl_snapshot(world, faults, workers=4):
    clock = SimClock()
    stores = build_stores(world)
    servers = {m: MarketServer(s, clock, faults=faults) for m, s in stores.items()}
    coordinator = CrawlCoordinator(servers, clock, download_apks=False, workers=workers)
    return coordinator.crawl("convergence", duration_days=5.0)


class TestFaultModeConvergence:
    """The tentpole acceptance test: under every injected fault mode the
    retry machinery absorbs the damage and ``crawl()`` converges to the
    exact snapshot a clean server would have produced.

    ``max_consecutive`` keeps failure streaks inside the client's retry
    budget, so convergence is guaranteed rather than probabilistic; the
    burst plan's length (2) stays under the 429-wait budget (4).
    """

    @pytest.fixture(scope="class")
    def clean_digest(self, world):
        snapshot = _crawl_snapshot(world, faults=None)
        assert len(snapshot) > 0
        return snapshot.content_digest()

    @pytest.mark.parametrize(
        "plan",
        [
            pytest.param(FaultPlan(timeout=0.08, max_consecutive=2), id="timeout"),
            pytest.param(FaultPlan(malformed=0.08, max_consecutive=2), id="malformed"),
            pytest.param(FaultPlan(burst_429_period=40), id="burst-429"),
            pytest.param(
                FaultPlan(
                    transient_500=0.04,
                    timeout=0.04,
                    malformed=0.04,
                    burst_429_period=60,
                    max_consecutive=2,
                ),
                id="mixed",
            ),
        ],
    )
    def test_converges_to_clean_snapshot(self, world, clean_digest, plan):
        snapshot = _crawl_snapshot(world, faults=plan)
        assert snapshot.content_digest() == clean_digest
        telemetry = snapshot.stats.telemetry
        assert telemetry is not None
        assert telemetry.total_faults_absorbed > 0

    def test_faults_and_flakiness_mutually_exclusive(self, world):
        stores = build_stores(world)
        with pytest.raises(ValueError):
            MarketServer(
                stores["tencent"],
                SimClock(),
                flakiness=0.1,
                faults=FaultPlan(timeout=0.1),
            )


class TestExtremes:
    def test_extreme_flakiness_degrades_gracefully(self, world):
        clock = SimClock()
        stores = build_stores(world)
        server = MarketServer(stores["tencent"], clock, flakiness=0.95)
        client = HttpClient(server.handle, clock)
        failures = 0
        for _ in range(20):
            try:
                client.get_json("/categories")
            except ServerError:
                failures += 1
        assert failures > 0  # retry budget genuinely exhausts
