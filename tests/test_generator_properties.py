"""Property-based tests over the ecosystem generator (hypothesis).

Tiny worlds across many seeds: structural invariants must hold for every
seed, not just the calibrated defaults.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.profiles import get_profile

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_world_structure_invariants(seed):
    world = EcosystemGenerator(seed=seed, scale=0.0001, min_market_size=10).generate()
    assert world.apps

    seen = set()
    for app, placement in world.iter_placements():
        # One listing per (market, package).
        key = (placement.market_id, app.package)
        assert key not in seen
        seen.add(key)
        # Placement points into the version history.
        assert 0 <= placement.version_index < len(app.versions)
        # Non-reporting markets never leak download counts.
        if not get_profile(placement.market_id).reports_downloads:
            assert placement.downloads is None
        # Ratings in range when present.
        if placement.rating is not None:
            assert 0.0 <= placement.rating <= 5.0

    for app in world.apps:
        assert app.developer is not None
        assert 1 <= app.min_sdk <= app.target_sdk
        assert app.versions == tuple(
            sorted(app.versions, key=lambda v: v.version_code)
        )
        # Requested permissions are a superset of nothing weird.
        assert len(set(app.permissions_requested)) == len(app.permissions_requested)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_clone_invariants(seed):
    world = EcosystemGenerator(seed=seed, scale=0.0001, min_market_size=10).generate()
    for app in world.apps:
        if app.provenance == "sb_clone":
            victim = world.app(app.related_app_id)
            assert app.package == victim.package
            assert app.developer.fingerprint != victim.developer.fingerprint
            assert app.versions[-1].version_code <= victim.versions[-1].version_code
        elif app.provenance == "cb_clone":
            victim = world.app(app.related_app_id)
            assert app.package != victim.package
        elif app.provenance == "fake":
            victim = world.app(app.related_app_id)
            assert app.display_name == victim.display_name
            assert app.package != victim.package


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_threat_feed_consistency(seed):
    world = EcosystemGenerator(seed=seed, scale=0.0001, min_market_size=10).generate()
    recorded = sum(
        world.threat_feed.count(family)
        for family in {a.threat.family for a in world.apps if a.threat}
    ) if any(a.threat for a in world.apps) else 0
    actual = sum(1 for a in world.apps if a.threat is not None)
    # Every applied threat was recorded (records may exceed apps when a
    # fully-delisted app kept its feed entry).
    assert recorded >= actual
