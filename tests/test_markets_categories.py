"""Tests for category taxonomies and consolidation."""

import numpy as np
import pytest

from repro.markets.categories import (
    CANONICAL_CATEGORIES,
    CANONICAL_WEIGHTS,
    NULL_LABELS,
    OTHER_CATEGORY,
    VENDOR_WEIGHTS,
    consolidation_table,
    taxonomy_for,
)
from repro.markets.profiles import ALL_MARKET_IDS


class TestCanonical:
    def test_twenty_two_categories(self):
        assert len(CANONICAL_CATEGORIES) == 22
        assert OTHER_CATEGORY in CANONICAL_CATEGORIES

    def test_games_dominate(self):
        assert max(CANONICAL_WEIGHTS, key=CANONICAL_WEIGHTS.get) == "Game"
        assert CANONICAL_WEIGHTS["Game"] > 0.3

    def test_vendor_skew(self):
        assert VENDOR_WEIGHTS["Game"] < CANONICAL_WEIGHTS["Game"]
        assert VENDOR_WEIGHTS["Tools"] > CANONICAL_WEIGHTS["Tools"]

    def test_weights_cover_all_categories(self):
        assert set(CANONICAL_WEIGHTS) == set(CANONICAL_CATEGORIES)


class TestTaxonomies:
    def test_every_market_has_taxonomy(self):
        for market in ALL_MARKET_IDS:
            taxonomy = taxonomy_for(market)
            assert len(taxonomy.labels) == 21  # all but Null/Other

    def test_labels_roundtrip_via_consolidation(self):
        table = consolidation_table()
        for market in ALL_MARKET_IDS:
            taxonomy = taxonomy_for(market)
            for canonical in CANONICAL_CATEGORIES:
                if canonical == OTHER_CATEGORY:
                    continue
                label = taxonomy.market_label(canonical)
                assert table[label] == canonical

    def test_null_labels_consolidate_to_other(self):
        table = consolidation_table()
        for label in NULL_LABELS:
            assert table[label] == OTHER_CATEGORY

    def test_null_label_sampling(self):
        rng = np.random.default_rng(1)
        taxonomy = taxonomy_for("tencent")
        for _ in range(20):
            assert taxonomy.null_label(rng) in NULL_LABELS

    def test_unknown_canonical_raises(self):
        with pytest.raises(KeyError):
            taxonomy_for("tencent").market_label("NotACategory")

    def test_gp_uses_canonical_spellings(self):
        taxonomy = taxonomy_for("google_play")
        assert taxonomy.market_label("Game") == "Game"
        assert taxonomy.market_label("Tools") == "Tools"

    def test_taxonomies_cached(self):
        assert taxonomy_for("baidu") is taxonomy_for("baidu")

    def test_markets_differ_in_spelling(self):
        spellings = {
            taxonomy_for(m).market_label("Lifestyle") for m in ALL_MARKET_IDS
        }
        assert len(spellings) > 1
