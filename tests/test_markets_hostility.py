"""Unit tests for the hostile-market gate and its policy."""

import pytest

from repro.markets.hostility import (
    DEFAULT_TOKEN_TTL,
    HOSTILITY_BEHAVIORS,
    HostileGate,
    HostilityPolicy,
)
from repro.net import wire
from repro.net.http import (
    HTTP_FORBIDDEN,
    HTTP_OK,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    Request,
    Response,
)


def request(path="/app", ip="10.0.0.1", ua="bot/1", token=None, **params):
    headers = {"x-client-ip": ip, "user-agent": ua}
    if token is not None:
        headers["authorization"] = token
    return Request(path=path, params=params, headers=headers)


class TestPolicy:
    def test_inactive_by_default(self):
        assert not HostilityPolicy().active
        assert HostilityPolicy().behaviors == ()
        assert HostilityPolicy().describe() == "none"

    def test_full_enables_all_behaviors(self):
        policy = HostilityPolicy.full()
        assert policy.behaviors == HOSTILITY_BEHAVIORS
        assert policy.describe() == "auth+binary+antibot+package_list"

    def test_for_behaviors(self):
        policy = HostilityPolicy.for_behaviors(("auth", "antibot"))
        assert policy.auth and policy.antibot
        assert not policy.binary and not policy.package_list_only
        with pytest.raises(ValueError):
            HostilityPolicy.for_behaviors(("auth", "nope"))

    def test_from_spec(self):
        assert HostilityPolicy.from_spec(None) is None
        assert HostilityPolicy.from_spec("none") is None
        assert HostilityPolicy.from_spec("  ") is None
        assert HostilityPolicy.from_spec("full") == HostilityPolicy.full()
        assert HostilityPolicy.from_spec("all") == HostilityPolicy.full()
        parsed = HostilityPolicy.from_spec("auth, binary")
        assert parsed.behaviors == ("auth", "binary")
        # Aliases.
        assert HostilityPolicy.from_spec("bans").antibot
        assert HostilityPolicy.from_spec("package-list").package_list_only

    def test_validation(self):
        with pytest.raises(ValueError):
            HostilityPolicy(token_ttl=0)
        with pytest.raises(ValueError):
            HostilityPolicy(velocity_limit=0)
        with pytest.raises(ValueError):
            HostilityPolicy(ban_base=1.0, ban_cap=0.5)
        with pytest.raises(ValueError):
            HostilityPolicy(ban_decay=0.0)

    def test_offense_decay_defaults_to_ban_base(self):
        assert HostilityPolicy(ban_base=0.4).offense_decay == 0.4
        assert HostilityPolicy(ban_decay=1.5).offense_decay == 1.5


class TestAuth:
    def make_gate(self, **overrides):
        return HostileGate("tencent", HostilityPolicy.for_behaviors(("auth",), **overrides))

    def test_rejects_without_token(self):
        gate = self.make_gate()
        denied = gate.screen(request(), now=0.0)
        assert denied is not None and denied.status == HTTP_UNAUTHORIZED
        assert gate.rejected_401 == 1

    def test_login_path_is_the_bootstrap(self):
        gate = self.make_gate()
        assert gate.screen(request("/login"), now=0.0) is None

    def test_login_issues_token_that_passes(self):
        gate = self.make_gate()
        resp = gate.login(request("/login"), now=0.0)
        assert resp.ok
        token = resp.json["token"]
        assert resp.json["ttl"] == DEFAULT_TOKEN_TTL
        assert gate.screen(request(token=token), now=1.0) is None
        assert gate.logins == 1

    def test_token_expires(self):
        gate = self.make_gate(token_ttl=2.0)
        token = gate.login(request("/login"), now=0.0).json["token"]
        assert gate.screen(request(token=token), now=1.99) is None
        denied = gate.screen(request(token=token), now=2.0)
        assert denied is not None and denied.status == HTTP_UNAUTHORIZED

    def test_bogus_token_rejected(self):
        gate = self.make_gate()
        denied = gate.screen(request(token="forged"), now=0.0)
        assert denied is not None and denied.status == HTTP_UNAUTHORIZED

    def test_tokens_are_deterministic(self):
        a, b = self.make_gate(), self.make_gate()
        for now in (0.0, 1.0, 2.0):
            assert (a.login(request("/login"), now).json
                    == b.login(request("/login"), now).json)

    def test_login_404_when_auth_disabled(self):
        gate = HostileGate("m", HostilityPolicy.for_behaviors(("binary",)))
        assert gate.login(request("/login"), now=0.0).status == 404


class TestAntibot:
    POLICY = dict(velocity_limit=5, velocity_window=0.02, tarpit_strikes=2,
                  tarpit_delay=0.02, ban_base=0.25, ban_cap=1.0)

    def make_gate(self, **overrides):
        params = {**self.POLICY, **overrides}
        return HostileGate("m", HostilityPolicy.for_behaviors(("antibot",), **params))

    def burst(self, gate, now, n, **identity):
        return [gate.screen(request(**identity), now) for _ in range(n)]

    def test_under_limit_passes(self):
        gate = self.make_gate()
        assert self.burst(gate, 0.0, 5) == [None] * 5

    def test_tarpits_then_bans(self):
        gate = self.make_gate()
        now = 0.0
        # Strike 1 and 2: tarpit 429s with growing hints.
        hints = []
        for strike in (1, 2):
            assert self.burst(gate, now, 5) == [None] * 5
            denied = gate.screen(request(), now)
            assert denied.status == HTTP_TOO_MANY_REQUESTS
            hints.append(denied.retry_after)
            now += denied.retry_after
        assert hints[1] > hints[0]
        assert gate.tarpits == 2
        # Strike 3: the ban begins.
        assert self.burst(gate, now, 5) == [None] * 5
        banned = gate.screen(request(), now)
        assert banned.status == HTTP_FORBIDDEN
        assert banned.retry_after == pytest.approx(0.25)
        assert gate.bans == 1

    def test_ban_windows_double_without_decay(self):
        gate = self.make_gate(tarpit_strikes=0, ban_decay=100.0)
        now, windows = 0.0, []
        for _ in range(4):
            self.burst(gate, now, 5)
            banned = gate.screen(request(), now)
            assert banned.status == HTTP_FORBIDDEN
            windows.append(banned.retry_after)
            now += banned.retry_after  # serve the full ban, re-offend
        assert windows == [pytest.approx(0.25), pytest.approx(0.5),
                           pytest.approx(1.0), pytest.approx(1.0)]  # capped

    def test_honored_ban_decays_the_record(self):
        gate = self.make_gate(tarpit_strikes=0)
        self.burst(gate, 0.0, 5)
        first = gate.screen(request(), 0.0)
        assert first.retry_after == pytest.approx(0.25)
        # The identity sits out the full window (>= decay), then
        # re-offends: escalation restarts at the base window.
        now = 0.25
        self.burst(gate, now, 5)
        again = gate.screen(request(), now)
        assert again.status == HTTP_FORBIDDEN
        assert again.retry_after == pytest.approx(0.25)

    def test_banned_identity_rejected_until_release(self):
        gate = self.make_gate(tarpit_strikes=0)
        self.burst(gate, 0.0, 5)
        banned = gate.screen(request(), 0.0)
        mid = gate.screen(request(), 0.1)
        assert mid.status == HTTP_FORBIDDEN
        assert mid.retry_after == pytest.approx(banned.retry_after - 0.1)
        assert gate.screen(request(), 0.25) is None  # window served

    def test_identities_tracked_independently(self):
        gate = self.make_gate(tarpit_strikes=0)
        self.burst(gate, 0.0, 5, ip="10.0.0.1")
        assert gate.screen(request(ip="10.0.0.1"), 0.0).status == HTTP_FORBIDDEN
        # A different IP (fresh identity) sails through.
        assert self.burst(gate, 0.0, 5, ip="10.0.0.2") == [None] * 5

    def test_window_expiry_resets_the_count(self):
        gate = self.make_gate()
        assert self.burst(gate, 0.0, 5) == [None] * 5
        # A full velocity window later the counter starts over.
        assert self.burst(gate, 0.02, 5) == [None] * 5
        assert gate.tarpits == gate.bans == 0


class TestPackageListOnly:
    def make_gate(self):
        return HostileGate("m", HostilityPolicy.for_behaviors(("package_list",)))

    def test_enumeration_gets_policy_403(self):
        gate = self.make_gate()
        for path in ("/categories", "/category", "/index", "/index_size"):
            denied = gate.screen(request(path), now=0.0)
            assert denied is not None and denied.status == HTTP_FORBIDDEN
            assert denied.retry_after is None  # policy: waiting never helps
        assert gate.rejected_403 == 4

    def test_app_and_search_pass(self):
        gate = self.make_gate()
        for path in ("/app", "/search", "/download", "/packages"):
            assert gate.screen(request(path), now=0.0) is None


class TestBinaryFinalize:
    def make_gate(self):
        return HostileGate("m", HostilityPolicy.for_behaviors(("binary",)))

    def test_json_ok_becomes_wire(self):
        gate = self.make_gate()
        out = gate.finalize("/app", Response.json_ok({"package": "a", "评分": 4.5}))
        assert out.status == HTTP_OK and out.json is None
        assert wire.is_wire(out.body)
        assert wire.decode(out.body) == {"package": "a", "评分": 4.5}
        assert gate.served_binary == 1

    def test_errors_and_garbled_pass_through(self):
        gate = self.make_gate()
        for resp in (Response.not_found(), Response.timeout(), Response.garbled()):
            assert gate.finalize("/app", resp) is resp

    def test_login_stays_json(self):
        gate = HostileGate("m", HostilityPolicy(auth=True, binary=True))
        resp = gate.login(request("/login"), now=0.0)
        assert gate.finalize("/login", resp) is resp
        assert resp.json is not None


class TestStateExportRestore:
    def test_round_trip_mid_ban_and_mid_session(self):
        policy = HostilityPolicy.full(velocity_limit=3, tarpit_strikes=0)
        gate = HostileGate("m", policy)
        token = gate.login(request("/login"), now=0.0).json["token"]
        for _ in range(3):
            gate.screen(request(token=token), 0.0)
        banned = gate.screen(request(token=token), 0.0)
        assert banned.status == HTTP_FORBIDDEN

        clone = HostileGate("m", policy)
        clone.restore_state(gate.export_state())
        assert clone.export_state() == gate.export_state()
        # The clone remembers the ban, the session, and the counters.
        mid = clone.screen(request(token=token), 0.1)
        assert mid.status == HTTP_FORBIDDEN
        assert clone.screen(request(ip="10.9.9.9", token=token),
                            banned.retry_after) is None
        assert clone.bans == gate.bans == 1
        assert clone.logins == 1

    def test_restored_gate_continues_identically(self):
        policy = HostilityPolicy.for_behaviors(("antibot",), velocity_limit=2)
        live = HostileGate("m", policy)
        checkpoint = None
        script = [(0.0, "10.0.0.1")] * 5 + [(0.01, "10.0.0.2")] * 5
        for step, (now, ip) in enumerate(script):
            live.screen(request(ip=ip), now)
            if step == 4:
                checkpoint = live.export_state()
        resumed = HostileGate("m", policy)
        resumed.restore_state(checkpoint)
        for now, ip in script[5:]:
            resumed.screen(request(ip=ip), now)
        assert resumed.export_state() == live.export_state()
