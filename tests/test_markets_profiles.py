"""Tests for the market profile data."""

import pytest

from repro.markets.profiles import (
    ALL_MARKET_IDS,
    CHINESE_MARKET_IDS,
    DOWNLOAD_BIN_LABELS,
    GOOGLE_PLAY,
    get_profile,
    iter_profiles,
)


class TestRegistry:
    def test_seventeen_markets(self):
        assert len(ALL_MARKET_IDS) == 17
        assert len(CHINESE_MARKET_IDS) == 16
        assert GOOGLE_PLAY not in CHINESE_MARKET_IDS

    def test_lookup(self):
        assert get_profile("tencent").display_name == "Tencent Myapp"

    def test_unknown_market(self):
        with pytest.raises(KeyError):
            get_profile("fdroid")

    def test_iter_order_matches_table1(self):
        names = [p.display_name for p in iter_profiles()]
        assert names[0] == "Google Play"
        assert names[1] == "Tencent Myapp"
        assert names[-1] == "App China"

    def test_paper_total_size(self):
        total = sum(p.paper_size for p in iter_profiles())
        assert total == 6_267_247  # Table 1's total row


class TestTable1Features:
    def test_unvetted_markets(self):
        # HiApk and PC Online perform no copyright or security checks.
        for market in ("hiapk", "pconline"):
            profile = get_profile(market)
            assert not profile.copyright_check
            assert not profile.app_vetting
            assert not profile.security_check
            assert profile.vet_catch == 0.0

    def test_human_inspection_markets(self):
        # Table 1 / Section 2: eight markets claim human inspection.
        markets = {
            m for m in ALL_MARKET_IDS if get_profile(m).human_inspection
        }
        assert markets == {
            GOOGLE_PLAY, "tencent", "oppo", "xiaomi", "meizu", "huawei",
            "anzhi", "appchina",
        }

    def test_only_gp_requires_privacy_policy(self):
        assert get_profile(GOOGLE_PLAY).privacy_policy_required
        assert not any(
            get_profile(m).privacy_policy_required for m in CHINESE_MARKET_IDS
        )

    def test_iap_reported_by_gp_and_360_only(self):
        markets = {m for m in ALL_MARKET_IDS if get_profile(m).reports_iap}
        assert markets == {GOOGLE_PLAY, "market360"}

    def test_lenovo_companies_only(self):
        assert get_profile("lenovo").openness == "companies_only"

    def test_oppo_partial(self):
        assert get_profile("oppo").openness == "partial"

    def test_360_requires_obfuscation(self):
        assert get_profile("market360").requires_obfuscation
        assert not get_profile("tencent").requires_obfuscation

    def test_appchina_size_limit(self):
        assert get_profile("appchina").extra["max_apk_mb"] == 50

    def test_non_reporting_downloads(self):
        markets = {m for m in ALL_MARKET_IDS if not get_profile(m).reports_downloads}
        assert markets == {"xiaomi", "appchina"}

    def test_gp_bins_only(self):
        assert get_profile(GOOGLE_PLAY).download_style == "bins"
        assert all(
            get_profile(m).download_style == "exact" for m in CHINESE_MARKET_IDS
        )


class TestCalibrationRows:
    def test_bin_shares_shape(self):
        for profile in iter_profiles():
            assert len(profile.download_bin_shares) == len(DOWNLOAD_BIN_LABELS)
            assert sum(profile.download_bin_shares) <= 1.005

    def test_figure9_extremes(self):
        shares = {m: get_profile(m).highest_version_share for m in ALL_MARKET_IDS}
        assert max(shares, key=shares.get) == GOOGLE_PLAY  # 95.4%
        assert min(shares, key=shares.get) == "baidu"  # 52.9%

    def test_table4_extremes(self):
        rates = {m: get_profile(m).av10_rate for m in ALL_MARKET_IDS}
        assert min(rates, key=rates.get) == GOOGLE_PLAY
        assert max(rates, key=rates.get) == "pconline"

    def test_pconline_default_rating(self):
        assert get_profile("pconline").default_rating == 3.0
        assert get_profile("tencent").default_rating is None

    def test_second_crawl_exclusions(self):
        assert get_profile("hiapk").discontinued_at_second_crawl
        assert get_profile("oppo").app_only_at_second_crawl

    def test_removal_rates(self):
        assert get_profile("hiapk").malware_removal_rate is None
        assert get_profile("oppo").malware_removal_rate is None
        assert get_profile(GOOGLE_PLAY).malware_removal_rate == 84.0
        assert get_profile("pconline").malware_removal_rate == 0.01

    def test_crawl_strategies(self):
        assert get_profile(GOOGLE_PLAY).crawl_strategy == "bfs_related"
        assert get_profile("baidu").crawl_strategy == "int_index"
        assert get_profile("tencent").crawl_strategy == "category_pages"

    def test_null_category_markets(self):
        # Section 4.1: ~40% NULL categories in these four stores.
        for market in ("tencent", "market360", "oppo", "pp25"):
            assert get_profile(market).category_null_share == pytest.approx(0.40)
