"""Tests for removal policies and their application to stores."""

import numpy as np
import pytest

from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.profiles import get_profile
from repro.markets.removal import RemovalPolicy
from repro.markets.removal_apply import apply_store_removals
from repro.markets.store import build_stores
from repro.util.rng import RngFactory
from repro.util.simtime import FIRST_CRAWL_DAY, SECOND_CRAWL_DAY


class TestRemovalPolicy:
    def _policy(self, market, seed=1):
        return RemovalPolicy(get_profile(market), np.random.default_rng(seed))

    def test_probability_from_profile(self):
        assert self._policy("google_play").removal_probability == 0.84
        assert self._policy("pconline").removal_probability == pytest.approx(0.0001)

    def test_excluded_markets_get_default(self):
        assert 0 < self._policy("hiapk").removal_probability < 0.5

    def test_removal_day_between_crawls(self):
        policy = self._policy("wandoujia")
        for _ in range(50):
            day = policy.removal_day()
            assert FIRST_CRAWL_DAY < day < SECOND_CRAWL_DAY

    def test_decide_rate(self):
        policy = self._policy("google_play", seed=3)
        decisions = policy.decide([f"com.app{i}" for i in range(500)])
        removed = sum(1 for d in decisions.values() if d is not None)
        assert removed / 500 == pytest.approx(0.84, abs=0.06)

    def test_decide_keeps_pconline(self):
        policy = self._policy("pconline", seed=4)
        decisions = policy.decide([f"com.app{i}" for i in range(300)])
        removed = sum(1 for d in decisions.values() if d is not None)
        assert removed <= 1


class TestApplyStoreRemovals:
    def test_end_to_end(self):
        world = EcosystemGenerator(seed=41, scale=0.0003).generate()
        stores = build_stores(world)
        outcome = apply_store_removals(stores, world, RngFactory(5))
        gp_flagged, gp_removed = outcome["google_play"]
        assert gp_flagged > 0
        assert 0.6 < gp_removed / gp_flagged <= 1.0  # ~84%
        # Removed listings are gone at the second crawl but present at the first.
        store = stores["google_play"]
        removed_any = False
        for app in world.apps:
            if app.threat is None or "google_play" not in app.placements:
                continue
            listing = store.get_any(app.package)
            if listing is not None and listing.removed_at is not None:
                removed_any = True
                assert listing.live_at(FIRST_CRAWL_DAY + 1) or listing.removed_at <= FIRST_CRAWL_DAY + 1
                assert not listing.live_at(SECOND_CRAWL_DAY)
        assert removed_any
