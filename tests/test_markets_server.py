"""Tests for the HTTP-like market servers."""

import pytest

from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import (
    HIAPK_SHUTDOWN_DAY,
    MarketServer,
    OPPO_WEB_SHUTDOWN_DAY,
)
from repro.markets.store import build_stores
from repro.net.http import Request
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=31, scale=0.0003).generate()


@pytest.fixture()
def servers(world):
    clock = SimClock()
    stores = build_stores(world)
    return {m: MarketServer(s, clock) for m, s in stores.items()}, clock


def _get(server, path, **params):
    return server.handle(Request(path=path, params=params))


class TestEndpoints:
    def test_app_lookup(self, servers):
        srv = servers[0]["tencent"]
        listing = next(srv.store.iter_live(servers[1].now))
        resp = _get(srv, "/app", package=listing.package)
        assert resp.ok
        assert resp.json["package"] == listing.package
        assert "rating" in resp.json and "updated_day" in resp.json

    def test_app_missing_404(self, servers):
        assert _get(servers[0]["tencent"], "/app", package="com.nope").status == 404

    def test_unknown_endpoint_404(self, servers):
        assert _get(servers[0]["tencent"], "/admin").status == 404

    def test_search(self, servers):
        srv = servers[0]["tencent"]
        listing = next(srv.store.iter_live(servers[1].now))
        resp = _get(srv, "/search", q=listing.package)
        assert resp.ok and resp.json

    def test_search_requires_query(self, servers):
        assert _get(servers[0]["tencent"], "/search").status == 404

    def test_categories_and_pages(self, servers):
        srv = servers[0]["huawei"]
        cats = _get(srv, "/categories").json
        assert cats
        page = _get(srv, "/category", name=cats[0], page=0).json
        assert isinstance(page, list)

    def test_index_endpoint(self, servers):
        srv = servers[0]["baidu"]
        resp = _get(srv, "/index", i=0)
        assert resp.ok
        assert _get(srv, "/index", i=10**6).status == 404

    def test_download_parses(self, servers):
        from repro.apk.archive import parse_apk

        srv = servers[0]["tencent"]
        listing = next(srv.store.iter_live(servers[1].now))
        resp = _get(srv, "/download", package=listing.package)
        assert resp.ok
        assert parse_apk(resp.body).manifest.package == listing.package

    def test_requests_counted(self, servers):
        srv = servers[0]["tencent"]
        before = srv.requests_served
        _get(srv, "/categories")
        assert srv.requests_served == before + 1


class TestGooglePlayQuota:
    def test_rate_limited_after_quota(self, world):
        clock = SimClock()
        stores = build_stores(world)
        server = MarketServer(stores["google_play"], clock, apk_quota=3)
        packages = [l.package for l in stores["google_play"].iter_live(clock.now)]
        statuses = [
            _get(server, "/download", package=p).status for p in packages[:6]
        ]
        assert statuses[:3] == [200, 200, 200]
        assert statuses[3:] == [429, 429, 429]
        assert server.apk_quota_used == 3

    def test_default_quota_share(self, world):
        clock = SimClock()
        stores = build_stores(world)
        server = MarketServer(stores["google_play"], clock)
        expected = max(1, int(len(stores["google_play"]) * 0.141))
        ok = 0
        for listing in stores["google_play"].iter_live(clock.now):
            if _get(server, "/download", package=listing.package).ok:
                ok += 1
        assert ok == expected

    def test_chinese_markets_unlimited(self, servers):
        srv = servers[0]["tencent"]
        for listing in list(srv.store.iter_live(servers[1].now))[:30]:
            assert _get(srv, "/download", package=listing.package).ok


class TestAvailabilityGates:
    def test_hiapk_dark_after_shutdown(self, world):
        clock = SimClock()
        server = MarketServer(build_stores(world)["hiapk"], clock)
        assert server.web_available
        clock.advance_to(HIAPK_SHUTDOWN_DAY + 1)
        assert not server.web_available
        assert _get(server, "/categories").status == 404

    def test_oppo_web_dark_after_app_only(self, world):
        clock = SimClock()
        server = MarketServer(build_stores(world)["oppo"], clock)
        clock.advance_to(OPPO_WEB_SHUTDOWN_DAY + 1)
        assert not server.web_available

    def test_others_stay_up(self, world):
        clock = SimClock()
        server = MarketServer(build_stores(world)["tencent"], clock)
        clock.advance_to(OPPO_WEB_SHUTDOWN_DAY + 100)
        assert server.web_available
