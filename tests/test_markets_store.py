"""Tests for market stores built from a generated world."""

import pytest

from repro.apk.archive import parse_apk
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.store import build_stores, install_range_for
from repro.util.simtime import FIRST_CRAWL_DAY


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=21, scale=0.0003).generate()


@pytest.fixture(scope="module")
def stores(world):
    return build_stores(world)


NOW = float(FIRST_CRAWL_DAY)


class TestInstallRange:
    def test_ranges(self):
        assert install_range_for(0) == (0, 10)
        assert install_range_for(75_123) == (10_000, 100_000)
        assert install_range_for(2_000_000) == (1_000_000, 10_000_000)


class TestStoreContents:
    def test_sizes_match_world(self, world, stores):
        for market_id, store in stores.items():
            assert len(store) == world.market_size(market_id)

    def test_gp_reports_ranges(self, stores):
        for listing in stores["google_play"].iter_live(NOW):
            assert listing.downloads is None
            assert listing.install_range is not None
            break

    def test_exact_markets_report_counts(self, stores):
        listing = next(stores["tencent"].iter_live(NOW))
        assert listing.install_range is None

    def test_xiaomi_reports_nothing(self, stores):
        for listing in stores["xiaomi"].iter_live(NOW):
            assert listing.downloads is None
            assert listing.install_range is None

    def test_unrated_reported_as_zero(self, stores):
        ratings = [l.rating for l in stores["tencent"].iter_live(NOW)]
        assert 0.0 in ratings

    def test_baidu_gp_crawled_labels(self, world):
        from repro.markets.profiles import get_profile
        from repro.markets.store import _developer_display_name

        # Section 4.4: some Baidu listings credit a Google Play crawl.
        # Deterministic check over all mixed-scope apps (the 15% hash
        # bucket must select some once enough candidates exist).
        profile = get_profile("baidu")
        mixed = [a for a in world.apps if a.scope == "mixed"]
        labels = [_developer_display_name(profile, a, "baidu") for a in mixed]
        tagged = [l for l in labels if "crawled from Google Play" in l]
        if len(mixed) >= 30:
            assert tagged
        # Other markets never tag.
        tencent = get_profile("tencent")
        assert not any(
            "crawled" in _developer_display_name(tencent, a, "tencent")
            for a in mixed[:50]
        )

    def test_duplicate_listing_rejected(self, stores):
        store = stores["tencent"]
        listing = next(store.iter_live(NOW))
        with pytest.raises(ValueError):
            store.add_listing(listing)


class TestLookups:
    def test_search_by_package_and_name(self, stores):
        store = stores["tencent"]
        listing = next(store.iter_live(NOW))
        assert store.search(listing.package, NOW)
        assert any(
            l.package == listing.package
            for l in store.search(listing.app_name, NOW)
        )

    def test_index_paging(self, stores):
        store = stores["baidu"]
        assert store.by_index(0, NOW) is not None
        assert store.by_index(store.index_size, NOW) is None

    def test_category_pages_cover_catalog(self, stores):
        store = stores["huawei"]
        seen = set()
        for category in store.categories():
            page = 0
            while True:
                chunk = store.category_page(category, page, NOW)
                if not chunk:
                    break
                seen.update(l.package for l in chunk)
                page += 1
        assert len(seen) == len(store)

    def test_related_same_category(self, stores):
        store = stores["tencent"]
        listing = next(store.iter_live(NOW))
        for related in store.related(listing.package, NOW):
            assert related.category == listing.category
            assert related.package != listing.package


class TestApkServing:
    def test_apk_parses_and_matches_listing(self, stores):
        store = stores["tencent"]
        listing = next(store.iter_live(NOW))
        parsed = parse_apk(store.apk_bytes(listing.package, NOW))
        assert parsed.manifest.package == listing.package
        assert parsed.manifest.version_code == listing.version_code

    def test_apk_cached(self, stores):
        store = stores["tencent"]
        listing = next(store.iter_live(NOW))
        assert store.apk_bytes(listing.package, NOW) is store.apk_bytes(
            listing.package, NOW
        )

    def test_360_serves_packed_apks(self, stores):
        store = stores["market360"]
        listing = next(store.iter_live(NOW))
        parsed = parse_apk(store.apk_bytes(listing.package, NOW))
        assert parsed.obfuscated_by == "360jiagubao"


class TestRemoval:
    def test_removed_listing_disappears(self, stores):
        store = stores["wandoujia"]
        listing = next(store.iter_live(NOW))
        assert store.remove_listing(listing.package, NOW + 10)
        assert store.get(listing.package, NOW + 11) is None
        assert store.get(listing.package, NOW + 9) is not None

    def test_double_removal_refused(self, stores):
        store = stores["wandoujia"]
        listing = next(store.iter_live(NOW))
        store.remove_listing(listing.package, NOW + 10)
        assert not store.remove_listing(listing.package, NOW + 20)

    def test_missing_package_removal_refused(self, stores):
        assert not stores["wandoujia"].remove_listing("com.nope", NOW)


class TestListingUpdates:
    def test_update_advances_version(self, world, stores):
        from repro.ecosystem.apps import AppVersion

        store = stores["anzhi"]
        listing = next(store.iter_live(NOW))
        new_version = AppVersion(
            version_code=listing.version_code + 5,
            version_name="9.9.9",
            release_day=int(NOW) - 10,
        )
        assert store.update_listing_version(listing.package, 0, new_version)
        refreshed = store.get(listing.package, NOW)
        assert refreshed.version_code == new_version.version_code
        assert refreshed.version_name == "9.9.9"

    def test_update_refuses_downgrade(self, world, stores):
        from repro.ecosystem.apps import AppVersion

        store = stores["anzhi"]
        listing = next(store.iter_live(NOW))
        old = AppVersion(version_code=0, version_name="0.0.1", release_day=100)
        assert not store.update_listing_version(listing.package, 0, old)

    def test_update_refuses_missing_package(self, stores):
        from repro.ecosystem.apps import AppVersion

        version = AppVersion(version_code=99, version_name="1", release_day=1)
        assert not stores["anzhi"].update_listing_version("com.nope", 0, version)

    def test_update_invalidates_apk_cache(self, world, stores):
        from repro.apk.archive import parse_apk
        from repro.ecosystem.apps import AppVersion

        store = stores["sougou"]
        # Pick a listing whose app has a later version to move to.
        target = None
        for listing in store.iter_live(NOW):
            app = world.app(listing.app_id)
            if listing.version_index < app.latest_version_index:
                target = (listing, app)
                break
        if target is None:
            return  # tiny world: nothing lagged here
        listing, app = target
        before = parse_apk(store.apk_bytes(listing.package, NOW))
        latest = app.latest_version_index
        assert store.update_listing_version(
            listing.package, latest, app.versions[latest]
        )
        after = parse_apk(store.apk_bytes(listing.package, NOW))
        assert after.manifest.version_code > before.manifest.version_code
