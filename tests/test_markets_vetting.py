"""Tests for the vetting pipeline."""

import numpy as np

from repro.markets.profiles import get_profile
from repro.markets.vetting import Submission, VettingPipeline


def _pipeline(market, seed=1):
    return VettingPipeline(get_profile(market), np.random.default_rng(seed))


def _accept_rate(market, submission, n=400, seed=2):
    pipeline = _pipeline(market, seed)
    return sum(pipeline.review(submission).accepted for _ in range(n)) / n


class TestGates:
    def test_clean_submission_accepted(self):
        assert _accept_rate("tencent", Submission(package="com.a")) == 1.0

    def test_forced_bypasses_everything(self):
        submission = Submission(package="com.a", threat_kind="trojan", forced=True)
        assert _pipeline("google_play").review(submission).accepted

    def test_lenovo_rejects_individuals(self):
        submission = Submission(package="com.a", developer_is_company=False)
        verdict = _pipeline("lenovo").review(submission)
        assert not verdict.accepted
        assert "individual" in verdict.reason

    def test_appchina_size_cap(self):
        big = Submission(package="com.a", apk_size_mb=80.0)
        small = Submission(package="com.a", apk_size_mb=30.0)
        assert not _pipeline("appchina").review(big).accepted
        assert _pipeline("appchina").review(small).accepted

    def test_unvetted_markets_accept_malware(self):
        submission = Submission(package="com.a", threat_kind="trojan")
        assert _accept_rate("hiapk", submission) == 1.0
        assert _accept_rate("pconline", submission) == 1.0


class TestCatchRates:
    def test_strict_markets_catch_more(self):
        trojan = Submission(package="com.a", threat_kind="trojan")
        assert _accept_rate("google_play", trojan) < _accept_rate("anzhi", trojan)

    def test_trojans_more_visible_than_adware(self):
        trojan = Submission(package="com.a", threat_kind="trojan")
        adware = Submission(package="com.a", threat_kind="adware")
        assert _accept_rate("huawei", trojan) < _accept_rate("huawei", adware)

    def test_copyright_check_catches_fakes(self):
        fake = Submission(package="com.a", is_fake=True)
        rate_checked = _accept_rate("google_play", fake)
        rate_unchecked = _accept_rate("pconline", fake)
        assert rate_checked < rate_unchecked == 1.0

    def test_clones_caught_less_than_fakes(self):
        fake = Submission(package="com.a", is_fake=True)
        clone = Submission(package="com.a", is_clone=True)
        assert _accept_rate("huawei", clone) >= _accept_rate("huawei", fake)


class TestVettingDelay:
    def test_within_profile_window(self):
        pipeline = _pipeline("huawei")
        lo, hi = get_profile("huawei").vetting_days
        for _ in range(50):
            assert lo <= pipeline.vetting_delay_days() <= hi

    def test_no_window_means_instant(self):
        assert _pipeline("hiapk").vetting_delay_days() == 0.0

    def test_fixed_window(self):
        # Tencent reviews in exactly one day (Table 1).
        assert _pipeline("tencent").vetting_delay_days() == 1.0
