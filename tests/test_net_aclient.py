"""The asyncio crawl client: retry parity with the sync client, plus
the asyncio-only behaviors (cancellation classing, pipelining, auth
single-flight on the event loop)."""

import asyncio

import pytest

from repro.net.aclient import AsyncHttpClient
from repro.net.client import RATE_LIMIT_JITTER_MAX, HttpClient
from repro.net.http import (
    NotFoundError,
    RateLimitedError,
    Request,
    RequestTimeoutError,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.net.transport import AsyncInProcessTransport
from repro.util.simtime import SimClock


def _handler_sequence(responses):
    """A handler returning canned responses in order (last one repeats)."""
    state = {"i": 0}

    def handle(request: Request) -> Response:
        i = min(state["i"], len(responses) - 1)
        state["i"] += 1
        return responses[i]

    return handle


def _client(responses, clock=None, **kwargs):
    return AsyncHttpClient(
        AsyncInProcessTransport(_handler_sequence(responses)),
        clock or SimClock(),
        **kwargs,
    )


def run(coro):
    return asyncio.run(coro)


class TestRetryParity:
    def test_ok(self):
        client = _client([Response.json_ok(42)])
        assert run(client.get_json("/x")) == 42
        assert client.stats.requests == 1

    def test_not_found(self):
        client = _client([Response.not_found()])
        with pytest.raises(NotFoundError):
            run(client.get_json("/x"))
        assert client.stats.not_found == 1

    def test_server_error_retried(self):
        client = _client([Response(status=500), Response.json_ok("up")])
        assert run(client.get_json("/x")) == "up"
        assert client.stats.retries == 1

    def test_timeout_exhausts_budget(self):
        client = _client(
            [Response.timeout()], retry_policy=RetryPolicy(max_retries=2)
        )
        with pytest.raises(RequestTimeoutError):
            run(client.get_json("/x"))
        assert client.stats.requests == 3
        assert client.stats.timeouts == 3

    def test_rate_limit_budget(self):
        client = _client(
            [Response.rate_limited(0.1)] * 10, max_rate_limit_waits=1
        )
        with pytest.raises(RateLimitedError):
            run(client.get_json("/x"))
        assert client.stats.rate_limit_aborts == 1

    def test_jitter_matches_sync_client(self):
        # Same jitter key, same request ordinal -> the async client
        # sleeps exactly what the sync client would (digest parity).
        responses = [Response.rate_limited(0.5), Response.json_ok("ok")]
        sync_clock, async_clock = SimClock(), SimClock()
        sync_client = HttpClient(
            _handler_sequence(responses), sync_clock, jitter_key="tencent"
        )
        async_client = _client(responses, async_clock, jitter_key="tencent")
        sync_start, async_start = sync_clock.now, async_clock.now
        assert sync_client.get_json("/x") == "ok"
        assert run(async_client.get_json("/x")) == "ok"
        assert (sync_clock.now - sync_start) == (async_clock.now - async_start)
        slept = async_clock.now - async_start
        assert 0.5 <= slept <= 0.5 * (1 + RATE_LIMIT_JITTER_MAX)

    def test_get_bytes(self):
        client = _client([Response.bytes_ok(b"blob")])
        assert run(client.get_bytes("/apk")) == b"blob"

    def test_get_bytes_empty_body_is_server_error(self):
        client = _client(
            [Response.json_ok(None)], retry_policy=RetryPolicy(max_retries=0)
        )
        with pytest.raises(ServerError):
            run(client.get_bytes("/apk"))


class TestCancellation:
    def test_cancelled_is_classified_not_retried(self):
        clock = SimClock()

        class HangingTransport:
            async def send(self, request):
                await asyncio.sleep(3600)

        client = AsyncHttpClient(HangingTransport(), clock)

        async def go():
            task = asyncio.ensure_future(client.request("/x"))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        run(go())
        assert client.stats.cancelled == 1
        assert client.stats.retries == 0
        assert client.stats.failures == 0
        assert client.stats.timeouts == 0


class TestAuthSingleFlight:
    def test_concurrent_requests_elect_one_login(self):
        from repro.net.credentials import CredentialManager

        logins = {"count": 0}

        def handle(request: Request) -> Response:
            if request.path == "/login":
                logins["count"] += 1
                return Response.json_ok({"token": "tok", "ttl": 10.0})
            assert request.header("authorization") == "tok"
            return Response.json_ok("data")

        client = AsyncHttpClient(
            AsyncInProcessTransport(handle),
            SimClock(),
            credentials=CredentialManager("tencent"),
        )

        async def go():
            return await asyncio.gather(
                *(client.get_json("/app", {"i": i}) for i in range(8))
            )

        results = run(go())
        assert results == ["data"] * 8
        assert logins["count"] == 1  # single-flight
        assert client.stats.logins == 1


class TestPipelining:
    def test_results_in_submission_order(self):
        def handle(request: Request) -> Response:
            return Response.json_ok(request.param("i"))

        client = AsyncHttpClient(AsyncInProcessTransport(handle), SimClock())
        items = [("/app", {"i": i}) for i in range(20)]
        results = run(client.get_json_many(items, depth=4))
        assert results == list(range(20))

    def test_exceptions_in_place(self):
        def handle(request: Request) -> Response:
            if request.param("i") == 2:
                return Response.not_found()
            return Response.json_ok(request.param("i"))

        client = AsyncHttpClient(AsyncInProcessTransport(handle), SimClock())
        items = [("/app", {"i": i}) for i in range(4)]
        results = run(client.get_json_many(items))
        assert results[0] == 0 and results[1] == 1 and results[3] == 3
        assert isinstance(results[2], NotFoundError)

    def test_depth_bounds_in_flight(self):
        peak = {"now": 0, "max": 0}

        class CountingTransport:
            async def send(self, request):
                peak["now"] += 1
                peak["max"] = max(peak["max"], peak["now"])
                await asyncio.sleep(0.001)
                peak["now"] -= 1
                return Response.json_ok("ok")

        client = AsyncHttpClient(CountingTransport(), SimClock())
        items = [("/app", {"i": i}) for i in range(16)]
        run(client.get_json_many(items, depth=3))
        assert peak["max"] <= 3
