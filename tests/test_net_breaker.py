"""Circuit breaker: state machine, clock coupling, client integration."""

import pytest

from repro.net.breaker import (
    DEFAULT_BREAKER_POLICY,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    MarketQuarantinedError,
)
from repro.net.client import HttpClient
from repro.net.http import HttpError, RequestTimeoutError, Response
from repro.net.retry import RetryPolicy
from repro.util.simtime import SimClock

POLICY = BreakerPolicy(
    failure_threshold=3, cooldown=0.5, open_poll_interval=0.05,
    half_open_probes=1, trip_budget=2,
)


def make_breaker(policy=POLICY):
    clock = SimClock()
    return CircuitBreaker("tencent", clock, policy), clock


class TestPolicy:
    def test_default_policy_is_valid(self):
        assert DEFAULT_BREAKER_POLICY.failure_threshold >= 1

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown": 0.0},
        {"open_poll_interval": -1.0},
        {"half_open_probes": 0},
        {"trip_budget": -1},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_lets_requests_through(self):
        breaker, _ = make_breaker()
        breaker.before_request()  # no raise
        assert breaker.state == STATE_CLOSED

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = make_breaker()
        for _ in range(POLICY.failure_threshold - 1):
            breaker.record_failure()
            assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker()
        for _ in range(10):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.trips == 0

    def test_open_circuit_fast_fails_and_advances_lane_clock(self):
        breaker, clock = make_breaker()
        for _ in range(POLICY.failure_threshold):
            breaker.record_failure()
        start = clock.now
        with pytest.raises(CircuitOpenError) as exc:
            breaker.before_request()
        assert exc.value.status == 503
        assert isinstance(exc.value, HttpError)
        assert clock.now == pytest.approx(start + POLICY.open_poll_interval)
        assert breaker.fast_failures == 1

    def test_fast_fail_clock_charge_converges_on_cooldown(self):
        # Fast-failing in a loop must reach the reopen deadline, not
        # spin forever: each fail charges min(poll, remaining).
        breaker, clock = make_breaker()
        for _ in range(POLICY.failure_threshold):
            breaker.record_failure()
        fails = 0
        while True:
            try:
                breaker.before_request()
                break  # half-open probe admitted
            except CircuitOpenError:
                fails += 1
                assert fails < 1000
        assert breaker.state == STATE_HALF_OPEN
        assert clock.now >= POLICY.cooldown

    def test_half_open_success_closes(self):
        breaker, clock = make_breaker()
        for _ in range(POLICY.failure_threshold):
            breaker.record_failure()
        clock.advance(POLICY.cooldown)
        breaker.before_request()  # half-open probe
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_half_open_failure_reopens_and_counts_a_trip(self):
        breaker, clock = make_breaker()
        for _ in range(POLICY.failure_threshold):
            breaker.record_failure()
        clock.advance(POLICY.cooldown)
        breaker.before_request()
        breaker.record_failure()  # the probe failed
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2

    def test_exhausting_trip_budget_quarantines(self):
        breaker, clock = make_breaker()
        # trip_budget=2: the third trip quarantines.
        for _ in range(3):
            for _ in range(POLICY.failure_threshold):
                breaker.record_failure()
            clock.advance(POLICY.cooldown)
        assert breaker.quarantined
        with pytest.raises(MarketQuarantinedError) as exc:
            breaker.before_request()
        assert not isinstance(exc.value, HttpError)  # must escape HttpError nets
        assert exc.value.market_id == "tencent"

    def test_none_trip_budget_never_quarantines(self):
        breaker, clock = make_breaker(BreakerPolicy(
            failure_threshold=1, cooldown=0.1, open_poll_interval=0.01,
            trip_budget=None,
        ))
        for _ in range(50):
            breaker.record_failure()
            clock.advance(0.1)
        assert not breaker.quarantined

    def test_reset_forgives_quarantine(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            for _ in range(POLICY.failure_threshold):
                breaker.record_failure()
            clock.advance(POLICY.cooldown)
        assert breaker.quarantined
        breaker.reset()
        assert not breaker.quarantined
        assert breaker.trips == 0
        breaker.before_request()  # closed again

    def test_state_round_trips(self):
        breaker, clock = make_breaker()
        for _ in range(POLICY.failure_threshold):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_request()
        exported = breaker.export_state()
        clone, _ = make_breaker()
        clone.restore_state(exported)
        assert clone.export_state() == exported
        assert clone.state == STATE_OPEN
        assert clone.trips == breaker.trips


class TestClientIntegration:
    def _client(self, handler, policy=POLICY, retries=1):
        clock = SimClock()
        breaker = CircuitBreaker("m", clock, policy)
        client = HttpClient(
            handler, clock,
            retry_policy=RetryPolicy(max_retries=retries, base_delay=0.001),
            breaker=breaker,
        )
        return client, breaker, clock

    def test_terminal_failures_feed_the_breaker_and_failures_once(self):
        client, breaker, _ = self._client(lambda req: Response.timeout())
        with pytest.raises(RequestTimeoutError):
            client.request("/app")
        assert client.stats.failures == 1
        assert breaker.consecutive_failures == 1

    def test_transient_then_success_does_not_count_failure(self):
        responses = [Response.timeout(), Response.json_ok({"ok": True})]
        client, breaker, _ = self._client(lambda req: responses.pop(0))
        client.request("/app")
        assert client.stats.failures == 0
        assert client.stats.retries == 1
        assert breaker.consecutive_failures == 0

    def test_404_counts_as_server_alive(self):
        client, breaker, _ = self._client(lambda req: Response.not_found())
        breaker._consecutive = 2
        with pytest.raises(HttpError):
            client.request("/app")
        assert breaker.consecutive_failures == 0
        assert client.stats.failures == 0

    def test_fast_fail_is_a_failure_but_not_a_request(self):
        client, breaker, _ = self._client(lambda req: Response.timeout())
        for _ in range(POLICY.failure_threshold):
            with pytest.raises(HttpError):
                client.request("/app")
        sent = client.stats.requests
        with pytest.raises(CircuitOpenError):
            client.request("/app")
        assert client.stats.requests == sent  # never reached the wire
        assert client.stats.breaker_fast_fails == 1
        assert client.stats.failures == POLICY.failure_threshold + 1

    def test_rate_limit_abort_does_not_feed_the_breaker(self):
        # Google Play's download quota answers 429 with a multi-day
        # hint; abandoning those must not open the circuit for the
        # market's healthy metadata endpoints.
        client, breaker, _ = self._client(
            lambda req: Response.rate_limited(retry_after=30.0)
        )
        client._max_rate_limit_wait = 0.5
        for _ in range(POLICY.failure_threshold + 2):
            with pytest.raises(HttpError):
                client.request("/download")
        assert breaker.state == STATE_CLOSED
        assert client.stats.rate_limit_aborts == POLICY.failure_threshold + 2
        assert client.stats.failures == client.stats.rate_limit_aborts
