"""Tests for the retrying HTTP client and retry policy."""

import pytest

from repro.net.client import RATE_LIMIT_JITTER_MAX, ClientStats, HttpClient
from repro.net.http import (
    MalformedPayloadError,
    NotFoundError,
    RateLimitedError,
    Request,
    RequestTimeoutError,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.simtime import SimClock


class TestRetryPolicy:
    def test_exponential(self):
        policy = RetryPolicy(max_retries=3, base_delay=1.0, multiplier=2.0, max_delay=100.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0

    def test_capped(self):
        policy = RetryPolicy(max_retries=5, base_delay=1.0, multiplier=10.0, max_delay=5.0)
        assert policy.delay(3) == 5.0

    def test_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_schedule_length(self):
        assert len(list(RetryPolicy(max_retries=4).delays())) == 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)


def _handler_sequence(responses):
    """A handler returning canned responses in order (last one repeats)."""
    state = {"i": 0}

    def handle(request: Request) -> Response:
        i = min(state["i"], len(responses) - 1)
        state["i"] += 1
        return responses[i]

    return handle


class TestHttpClient:
    def test_ok(self):
        client = HttpClient(_handler_sequence([Response.json_ok(42)]), SimClock())
        assert client.get_json("/x") == 42
        assert client.stats.requests == 1

    def test_not_found_raises(self):
        client = HttpClient(_handler_sequence([Response.not_found()]), SimClock())
        with pytest.raises(NotFoundError):
            client.get_json("/x")
        assert client.stats.not_found == 1

    def test_rate_limit_waits_then_succeeds(self):
        clock = SimClock()
        start = clock.now
        client = HttpClient(
            _handler_sequence([Response.rate_limited(0.5), Response.json_ok("ok")]),
            clock,
            max_rate_limit_waits=2,
        )
        assert client.get_json("/x") == "ok"
        # Slept retry_after stretched by the deterministic jitter.
        slept = clock.now - start
        assert 0.5 <= slept <= 0.5 * (1 + RATE_LIMIT_JITTER_MAX)
        assert client.stats.rate_limited == 1

    def test_rate_limit_budget_exhausted(self):
        responses = [Response.rate_limited(0.1)] * 10
        client = HttpClient(
            _handler_sequence(responses), SimClock(), max_rate_limit_waits=1
        )
        with pytest.raises(RateLimitedError):
            client.get_json("/x")

    def test_zero_waits_raises_immediately(self):
        client = HttpClient(
            _handler_sequence([Response.rate_limited(5.0)]),
            SimClock(),
            max_rate_limit_waits=0,
        )
        with pytest.raises(RateLimitedError):
            client.get_json("/x")
        assert client.stats.requests == 1

    def test_server_error_retried(self):
        client = HttpClient(
            _handler_sequence([Response(status=500), Response.json_ok("up")]),
            SimClock(),
        )
        assert client.get_json("/x") == "up"
        assert client.stats.retries == 1

    def test_server_error_exhausts_retries(self):
        client = HttpClient(
            _handler_sequence([Response(status=500)]),
            SimClock(),
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(ServerError):
            client.get_json("/x")
        assert client.stats.requests == 3  # initial + 2 retries

    def test_timeout_retried(self):
        client = HttpClient(
            _handler_sequence([Response.timeout(), Response.json_ok("up")]),
            SimClock(),
        )
        assert client.get_json("/x") == "up"
        assert client.stats.timeouts == 1
        assert client.stats.retries == 1

    def test_timeout_exhausts_retries(self):
        client = HttpClient(
            _handler_sequence([Response.timeout()]),
            SimClock(),
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(RequestTimeoutError):
            client.get_json("/x")
        assert client.stats.requests == 3

    def test_malformed_payload_retried(self):
        client = HttpClient(
            _handler_sequence([Response.garbled(), Response.json_ok("clean")]),
            SimClock(),
        )
        assert client.get_json("/x") == "clean"
        assert client.stats.malformed == 1

    def test_malformed_payload_exhausts_retries(self):
        client = HttpClient(
            _handler_sequence([Response.garbled()]),
            SimClock(),
            retry_policy=RetryPolicy(max_retries=1),
        )
        with pytest.raises(MalformedPayloadError):
            client.get_json("/x")

    def test_rate_limit_wait_cap_raises_immediately(self):
        # A multi-day retry_after (Google Play's download quota) is a
        # hard limit: surface it instead of sleeping the campaign away.
        clock = SimClock()
        start = clock.now
        client = HttpClient(
            _handler_sequence([Response.rate_limited(30.0)]),
            clock,
            max_rate_limit_waits=5,
            max_rate_limit_wait=0.5,
        )
        with pytest.raises(RateLimitedError):
            client.get_json("/download")
        assert client.stats.requests == 1
        assert clock.now == start  # no sleep happened

    def test_rate_limit_wait_cap_allows_short_hints(self):
        clock = SimClock()
        start = clock.now
        client = HttpClient(
            _handler_sequence([Response.rate_limited(0.01), Response.json_ok("ok")]),
            clock,
            max_rate_limit_waits=2,
            max_rate_limit_wait=0.5,
        )
        assert client.get_json("/x") == "ok"
        assert clock.now > start

    def test_jitter_deterministic_and_desynchronized(self):
        def run(jitter_key):
            clock = SimClock()
            start = clock.now
            client = HttpClient(
                _handler_sequence([Response.rate_limited(1.0), Response.json_ok("ok")]),
                clock,
                max_rate_limit_waits=1,
                jitter_key=jitter_key,
            )
            client.get_json("/x")
            return clock.now - start

        # Same key reproduces the same sleep; distinct keys spread out.
        assert run("tencent") == run("tencent")
        sleeps = {run(key) for key in ("tencent", "baidu", "mi", "huawei", "oppo")}
        assert len(sleeps) > 1
        assert all(1.0 <= s <= 1.0 + RATE_LIMIT_JITTER_MAX for s in sleeps)

    def test_pacer_sleeps_before_sending(self):
        clock = SimClock()
        waits = iter([0.25, 0.0])
        client = HttpClient(
            _handler_sequence([Response.json_ok("a"), Response.json_ok("b")]),
            clock,
            pacer=lambda: next(waits),
        )
        start = clock.now
        assert client.get_json("/x") == "a"
        assert clock.now == pytest.approx(start + 0.25)
        assert client.get_json("/x") == "b"
        assert clock.now == pytest.approx(start + 0.25)

    def test_get_bytes(self):
        client = HttpClient(_handler_sequence([Response.bytes_ok(b"apk")]), SimClock())
        assert client.get_bytes("/download") == b"apk"

    def test_get_bytes_missing_body(self):
        client = HttpClient(_handler_sequence([Response.json_ok(None)]), SimClock())
        with pytest.raises(ServerError):
            client.get_bytes("/download")


def _full_stats() -> ClientStats:
    return ClientStats(
        requests=10, retries=3, rate_limited=2, timeouts=1, malformed=1,
        not_found=4, failures=2, rate_limit_aborts=1, breaker_fast_fails=1,
        sim_days_slept=0.75,
    )


class TestClientStats:
    def test_delta_covers_every_counter(self):
        baseline = _full_stats()
        moved = ClientStats(
            requests=15, retries=5, rate_limited=3, timeouts=2, malformed=1,
            not_found=6, failures=3, rate_limit_aborts=2, breaker_fast_fails=2,
            sim_days_slept=1.0,
        )
        delta = moved.delta(baseline)
        assert delta == ClientStats(
            requests=5, retries=2, rate_limited=1, timeouts=1, malformed=0,
            not_found=2, failures=1, rate_limit_aborts=1, breaker_fast_fails=1,
            sim_days_slept=0.25,
        )

    def test_delta_of_self_is_zero(self):
        stats = _full_stats()
        assert stats.delta(stats) == ClientStats()

    def test_export_state_round_trips(self):
        stats = _full_stats()
        state = stats.export_state()
        restored = ClientStats.from_state(state)
        assert restored == stats
        assert restored is not stats

    def test_export_state_is_json_plain(self):
        import json

        state = _full_stats().export_state()
        assert ClientStats.from_state(json.loads(json.dumps(state))) == _full_stats()

    def test_copy_is_independent(self):
        stats = _full_stats()
        snapshot = stats.copy()
        stats.requests += 1
        assert snapshot.requests == 10
        assert stats.delta(snapshot).requests == 1

    def test_not_found_is_not_a_failure(self):
        client = HttpClient(_handler_sequence([Response.not_found()]), SimClock())
        with pytest.raises(NotFoundError):
            client.request("/app")
        assert client.stats.not_found == 1
        assert client.stats.failures == 0
