"""Tests for the retrying HTTP client and retry policy."""

import pytest

from repro.net.client import HttpClient
from repro.net.http import (
    NotFoundError,
    RateLimitedError,
    Request,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.simtime import SimClock


class TestRetryPolicy:
    def test_exponential(self):
        policy = RetryPolicy(max_retries=3, base_delay=1.0, multiplier=2.0, max_delay=100.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0

    def test_capped(self):
        policy = RetryPolicy(max_retries=5, base_delay=1.0, multiplier=10.0, max_delay=5.0)
        assert policy.delay(3) == 5.0

    def test_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_schedule_length(self):
        assert len(list(RetryPolicy(max_retries=4).delays())) == 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)


def _handler_sequence(responses):
    """A handler returning canned responses in order (last one repeats)."""
    state = {"i": 0}

    def handle(request: Request) -> Response:
        i = min(state["i"], len(responses) - 1)
        state["i"] += 1
        return responses[i]

    return handle


class TestHttpClient:
    def test_ok(self):
        client = HttpClient(_handler_sequence([Response.json_ok(42)]), SimClock())
        assert client.get_json("/x") == 42
        assert client.stats.requests == 1

    def test_not_found_raises(self):
        client = HttpClient(_handler_sequence([Response.not_found()]), SimClock())
        with pytest.raises(NotFoundError):
            client.get_json("/x")
        assert client.stats.not_found == 1

    def test_rate_limit_waits_then_succeeds(self):
        clock = SimClock()
        start = clock.now
        client = HttpClient(
            _handler_sequence([Response.rate_limited(0.5), Response.json_ok("ok")]),
            clock,
            max_rate_limit_waits=2,
        )
        assert client.get_json("/x") == "ok"
        assert clock.now == pytest.approx(start + 0.5)  # slept retry_after
        assert client.stats.rate_limited == 1

    def test_rate_limit_budget_exhausted(self):
        responses = [Response.rate_limited(0.1)] * 10
        client = HttpClient(
            _handler_sequence(responses), SimClock(), max_rate_limit_waits=1
        )
        with pytest.raises(RateLimitedError):
            client.get_json("/x")

    def test_zero_waits_raises_immediately(self):
        client = HttpClient(
            _handler_sequence([Response.rate_limited(5.0)]),
            SimClock(),
            max_rate_limit_waits=0,
        )
        with pytest.raises(RateLimitedError):
            client.get_json("/x")
        assert client.stats.requests == 1

    def test_server_error_retried(self):
        client = HttpClient(
            _handler_sequence([Response(status=500), Response.json_ok("up")]),
            SimClock(),
        )
        assert client.get_json("/x") == "up"
        assert client.stats.retries == 1

    def test_server_error_exhausts_retries(self):
        client = HttpClient(
            _handler_sequence([Response(status=500)]),
            SimClock(),
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(ServerError):
            client.get_json("/x")
        assert client.stats.requests == 3  # initial + 2 retries

    def test_get_bytes(self):
        client = HttpClient(_handler_sequence([Response.bytes_ok(b"apk")]), SimClock())
        assert client.get_bytes("/download") == b"apk"

    def test_get_bytes_missing_body(self):
        client = HttpClient(_handler_sequence([Response.json_ok(None)]), SimClock())
        with pytest.raises(ServerError):
            client.get_bytes("/download")
