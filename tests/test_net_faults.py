"""Unit tests for the fault-injection plans and injector."""

import pytest

from repro.net.faults import CLEAN_PLAN, FaultInjector, FaultPlan
from repro.net.http import HTTP_TIMEOUT, HTTP_TOO_MANY_REQUESTS


class TestFaultPlan:
    def test_clean_plan_inactive(self):
        assert not CLEAN_PLAN.active
        assert FaultInjector("m", CLEAN_PLAN).inject(1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_500=1.0)
        with pytest.raises(ValueError):
            FaultPlan(timeout=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(malformed=2.0)
        with pytest.raises(ValueError):
            FaultPlan(burst_429_period=3, burst_429_length=3)
        with pytest.raises(ValueError):
            FaultPlan(max_consecutive=0)

    def test_active_modes(self):
        assert FaultPlan(timeout=0.1).active
        assert FaultPlan(malformed=0.1).active
        assert FaultPlan(burst_429_period=50).active
        assert FaultPlan.blackout(5.0, 2.0).active


class TestBlackoutWindows:
    def test_legacy_equals_canonical(self):
        # The one-window classmethod and the general form are the same plan.
        assert FaultPlan.blackout(5.0, 2.0) == FaultPlan.blackouts([(5.0, 2.0)])

    def test_order_independent(self):
        a = FaultPlan.blackouts([(1.0, 2.0), (10.0, 1.0)])
        b = FaultPlan.blackouts([(10.0, 1.0), (1.0, 2.0)])
        assert a == b
        assert a.blackout_windows == ((1.0, 2.0), (10.0, 1.0))

    def test_overlapping_windows_merge(self):
        plan = FaultPlan.blackouts([(1.0, 3.0), (2.0, 4.0)])
        assert plan.blackout_windows == ((1.0, 5.0),)

    def test_touching_windows_merge(self):
        plan = FaultPlan.blackouts([(1.0, 2.0), (3.0, 1.0)])
        assert plan.blackout_windows == ((1.0, 3.0),)

    def test_contained_window_absorbed(self):
        plan = FaultPlan.blackouts([(1.0, 10.0), (3.0, 2.0)])
        assert plan.blackout_windows == ((1.0, 10.0),)

    def test_zero_length_window_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.blackouts([(5.0, 0.0)])
        with pytest.raises(ValueError):
            FaultPlan.blackout(5.0, -1.0)

    def test_in_blackout_respects_every_window(self):
        plan = FaultPlan.blackouts([(1.0, 1.0), (5.0, 1.0)])
        assert plan.in_blackout(1.5)
        assert plan.in_blackout(5.0)
        assert not plan.in_blackout(3.0)
        assert not plan.in_blackout(6.0)  # half-open: end is excluded

    def test_injector_times_out_during_every_window(self):
        plan = FaultPlan.blackouts([(1.0, 1.0), (5.0, 1.0)])
        injector = FaultInjector("m", plan)
        assert injector.inject(1, now=1.5).status == HTTP_TIMEOUT
        assert injector.inject(2, now=5.5).status == HTTP_TIMEOUT
        assert injector.inject(3, now=3.0) is None


class TestFaultInjector:
    def test_deterministic_per_ordinal(self):
        plan = FaultPlan(transient_500=0.1, timeout=0.1, malformed=0.1)
        a = FaultInjector("tencent", plan)
        b = FaultInjector("tencent", plan)
        seq_a = [a.inject(i) for i in range(1, 500)]
        seq_b = [b.inject(i) for i in range(1, 500)]
        assert [(r.status, r.malformed) if r else None for r in seq_a] == [
            (r.status, r.malformed) if r else None for r in seq_b
        ]
        assert a.injected_total == b.injected_total > 0

    def test_markets_fail_independently(self):
        plan = FaultPlan(transient_500=0.2)
        a = FaultInjector("tencent", plan)
        b = FaultInjector("baidu", plan)
        seq_a = [a.inject(i) is not None for i in range(1, 300)]
        seq_b = [b.inject(i) is not None for i in range(1, 300)]
        assert seq_a != seq_b

    def test_burst_429_pattern(self):
        plan = FaultPlan(burst_429_period=10, burst_429_length=2)
        injector = FaultInjector("m", plan)
        statuses = [
            r.status if (r := injector.inject(i)) else 200 for i in range(1, 41)
        ]
        # Ordinals 10,11, 20,21, 30,31 ... land in bursts.
        assert statuses.count(HTTP_TOO_MANY_REQUESTS) == 8
        assert statuses[9] == statuses[10] == HTTP_TOO_MANY_REQUESTS
        assert injector.injected_429 == 8

    def test_burst_429_hints_short_wait(self):
        injector = FaultInjector("m", FaultPlan(burst_429_period=5))
        response = injector.inject(5)
        assert response is not None
        assert response.retry_after is not None
        assert response.retry_after < 0.01  # minutes, not days

    def test_timeout_mode(self):
        injector = FaultInjector("m", FaultPlan(timeout=0.5))
        statuses = {r.status for i in range(1, 200) if (r := injector.inject(i))}
        assert statuses == {HTTP_TIMEOUT}

    def test_malformed_mode(self):
        injector = FaultInjector("m", FaultPlan(malformed=0.5))
        faults = [r for i in range(1, 200) if (r := injector.inject(i))]
        assert faults
        assert all(r.malformed and not r.ok for r in faults)

    def test_max_consecutive_caps_streaks(self):
        plan = FaultPlan(transient_500=0.9, max_consecutive=2)
        injector = FaultInjector("m", plan)
        streak = longest = 0
        for i in range(1, 2000):
            if injector.inject(i) is not None:
                streak += 1
                longest = max(longest, streak)
            else:
                streak = 0
        assert injector.injected_500 > 0
        assert longest <= 2

    def test_unbounded_streaks_by_default(self):
        injector = FaultInjector("m", FaultPlan(transient_500=0.95))
        streak = longest = 0
        for i in range(1, 500):
            if injector.inject(i) is not None:
                streak += 1
                longest = max(longest, streak)
            else:
                streak = 0
        assert longest > 3  # nothing caps the run of failures
