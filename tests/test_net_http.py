"""Tests for the HTTP-like request/response model."""

from repro.net.http import (
    HTTP_NOT_FOUND,
    HTTP_OK,
    HTTP_TOO_MANY_REQUESTS,
    NotFoundError,
    RateLimitedError,
    Request,
    Response,
    ServerError,
)


class TestRequest:
    def test_param_lookup(self):
        req = Request(path="/search", params={"q": "com.foo"})
        assert req.param("q") == "com.foo"

    def test_param_default(self):
        assert Request(path="/x").param("missing", 7) == 7

    def test_frozen(self):
        req = Request(path="/x")
        try:
            req.path = "/y"  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestResponse:
    def test_json_ok(self):
        resp = Response.json_ok({"a": 1})
        assert resp.ok and resp.status == HTTP_OK and resp.json == {"a": 1}

    def test_bytes_ok(self):
        resp = Response.bytes_ok(b"blob")
        assert resp.ok and resp.body == b"blob"

    def test_not_found(self):
        resp = Response.not_found()
        assert not resp.ok and resp.status == HTTP_NOT_FOUND

    def test_rate_limited(self):
        resp = Response.rate_limited(retry_after=3.0)
        assert resp.status == HTTP_TOO_MANY_REQUESTS
        assert resp.retry_after == 3.0


class TestErrors:
    def test_status_attached(self):
        assert NotFoundError("/x").status == HTTP_NOT_FOUND
        assert RateLimitedError("/x", 1.0).status == HTTP_TOO_MANY_REQUESTS
        assert ServerError("/x").status == 500

    def test_retry_after_carried(self):
        assert RateLimitedError("/x", 2.5).retry_after == 2.5
