"""Unit tests for identity pools and the credential manager."""

import pytest

from repro.net.credentials import CredentialManager
from repro.net.identity import (
    Identity,
    IdentityPolicy,
    IdentityPool,
    ROTATION_MODES,
)


class TestIdentityPolicy:
    def test_defaults(self):
        policy = IdentityPolicy()
        assert policy.size == 4
        assert policy.rotation == "on_ban"

    def test_validation(self):
        with pytest.raises(ValueError):
            IdentityPolicy(size=0)
        with pytest.raises(ValueError):
            IdentityPolicy(rotation="random")
        with pytest.raises(ValueError):
            IdentityPolicy(rotate_every=0)
        with pytest.raises(ValueError):
            IdentityPolicy(cooldown=-1.0)


class TestDerivation:
    def test_same_seed_same_identities(self):
        a = IdentityPool("tencent", IdentityPolicy(size=6), seed=42)
        b = IdentityPool("tencent", IdentityPolicy(size=6), seed=42)
        assert [a.checkout(0.0)[0] for _ in range(6)] == [
            b.checkout(0.0)[0] for _ in range(6)
        ]

    def test_markets_get_distinct_identities(self):
        a = IdentityPool("tencent", IdentityPolicy(size=4), seed=42)
        b = IdentityPool("baidu", IdentityPolicy(size=4), seed=42)
        assert a.current != b.current

    def test_seed_changes_identities(self):
        a = IdentityPool("m", IdentityPolicy(size=4), seed=1)
        b = IdentityPool("m", IdentityPolicy(size=4), seed=2)
        assert a.current != b.current

    def test_pool_identities_are_unique(self):
        pool = IdentityPool("m", IdentityPolicy(size=8), seed=0)
        seen = set()
        for index in range(8):
            pool._current = index
            seen.add(pool.current)
        assert len(seen) == 8

    def test_headers_shape(self):
        headers = IdentityPool("m", IdentityPolicy(), seed=0).current.headers()
        assert set(headers) == {"x-client-ip", "user-agent"}
        assert headers["x-client-ip"].startswith("10.")


class TestOnBanRotation:
    def make_pool(self, size=3):
        return IdentityPool("m", IdentityPolicy(size=size, rotation="on_ban",
                                                cooldown=0.05), seed=7)

    def test_stays_put_without_bans(self):
        pool = self.make_pool()
        first = pool.current
        for _ in range(200):
            identity, rotated = pool.checkout(0.0)
            assert identity == first and not rotated

    def test_rotate_after_ban(self):
        pool = self.make_pool()
        banned = pool.current
        pool.ban_current(0.0, retry_after=0.5)
        assert pool.rotate_to_available(0.0)
        assert pool.current != banned
        assert pool.rotations == 1
        assert pool.bans_recorded == 1

    def test_cooldown_floors_the_ban_window(self):
        pool = self.make_pool()
        pool.ban_current(0.0, retry_after=0.001)  # shorter than cooldown
        pool.ban_current(0.0, retry_after=None)
        assert pool.earliest_release(0.0) is None  # two slots still free
        assert pool._banned_until[0] == pytest.approx(0.05)

    def test_all_banned_reports_earliest_release(self):
        pool = self.make_pool(size=2)
        pool.ban_current(0.0, retry_after=0.3)
        pool.rotate_to_available(0.0)
        pool.ban_current(0.0, retry_after=0.2)
        assert not pool.rotate_to_available(0.0)
        assert pool.earliest_release(0.0) == pytest.approx(0.2)
        # After the shortest window the pool frees up again — and the
        # freed slot is the current one, so no rotation is needed.
        assert pool.earliest_release(0.2) is None
        assert not pool.rotate_to_available(0.2)
        assert pool._banned_until[pool.current_index] <= 0.2

    def test_checkout_dodges_a_mid_ban_current(self):
        pool = self.make_pool()
        pool.ban_current(0.0, retry_after=1.0)
        identity, rotated = pool.checkout(0.5)
        assert rotated
        assert pool._banned_until[pool.current_index] <= 0.5


class TestRoundRobinRotation:
    def test_advances_every_n_checkouts(self):
        pool = IdentityPool(
            "m", IdentityPolicy(size=3, rotation="round_robin", rotate_every=5),
            seed=7,
        )
        slots = [pool.checkout(0.0)[0] for _ in range(15)]
        assert len(set(slots[:5])) == 1
        assert slots[5] != slots[4]
        assert slots[10] != slots[9]
        assert pool.rotations == 2

    def test_skips_banned_slots(self):
        pool = IdentityPool(
            "m", IdentityPolicy(size=3, rotation="round_robin", rotate_every=1),
            seed=7,
        )
        pool.checkout(0.0)
        pool.ban_current(0.0, retry_after=10.0)
        seen = {pool.checkout(0.0)[0] for _ in range(6)}
        assert pool._identities[0] not in seen if pool._banned_until[0] > 0 else True
        assert all(pool._banned_until[pool._identities.index(i)] <= 0 for i in seen)


class TestPoolStateRoundTrip:
    def test_export_restore(self):
        pool = IdentityPool("m", IdentityPolicy(size=3), seed=9)
        pool.checkout(0.0)
        pool.ban_current(0.0, retry_after=0.4)
        pool.rotate_to_available(0.0)
        state = pool.export_state()

        clone = IdentityPool("m", IdentityPolicy(size=3), seed=9)
        clone.restore_state(state)
        assert clone.export_state() == state
        assert clone.current == pool.current
        assert clone.earliest_release(0.0) == pool.earliest_release(0.0)

    def test_restore_pads_on_size_change(self):
        old = IdentityPool("m", IdentityPolicy(size=2), seed=9)
        old.ban_current(0.0, retry_after=1.0)
        grown = IdentityPool("m", IdentityPolicy(size=4), seed=9)
        grown.restore_state(old.export_state())
        assert len(grown._banned_until) == 4
        assert grown.rotate_to_available(0.0)


class TestCredentialManager:
    def test_no_token_initially(self):
        creds = CredentialManager("m")
        assert creds.token_if_valid(0.0) is None
        assert not creds.ever_logged_in

    def test_install_and_validity(self):
        creds = CredentialManager("m", refresh_margin=0.1)
        creds.install("tok", ttl=2.0, now=0.0)
        assert creds.ever_logged_in
        assert creds.logins == 1
        assert creds.token_if_valid(0.0) == "tok"
        # Proactive refresh: the token reads invalid inside the margin
        # (10% of ttl = 0.2 days before true expiry).
        assert creds.token_if_valid(1.79) == "tok"
        assert creds.token_if_valid(1.8) is None
        assert creds.token_if_valid(5.0) is None

    def test_invalidate(self):
        creds = CredentialManager("m")
        creds.install("tok", ttl=10.0, now=0.0)
        creds.invalidate()
        assert creds.token_if_valid(0.1) is None
        assert creds.ever_logged_in  # history survives invalidation

    def test_export_restore(self):
        creds = CredentialManager("m")
        creds.install("tok-a", ttl=3.0, now=1.0)
        creds.install("tok-b", ttl=3.0, now=2.0)
        clone = CredentialManager("m")
        clone.restore_state(creds.export_state())
        assert clone.export_state() == creds.export_state()
        assert clone.token_if_valid(2.5) == "tok-b"
        assert clone.logins == 2
