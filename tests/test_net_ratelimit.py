"""Tests for rate limiting primitives."""

import pytest

from repro.net.ratelimit import QuotaLimiter, TokenBucket
from repro.util.simtime import SimClock


class TestTokenBucket:
    def test_burst_capacity(self):
        bucket = TokenBucket(SimClock(), rate=10, burst=3)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=1)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.2)  # 2 tokens worth, capped at burst=1
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_time_until_available(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=2, burst=1)
        bucket.try_acquire()
        assert bucket.time_until_available() == pytest.approx(0.5)

    def test_cap_at_burst(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=100, burst=2)
        clock.advance(10)
        assert bucket.available == pytest.approx(2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate=0, burst=1)


class TestQuotaLimiter:
    def test_exhausts(self):
        quota = QuotaLimiter(2)
        assert quota.try_acquire()
        assert quota.try_acquire()
        assert not quota.try_acquire()
        assert not quota.try_acquire()  # stays refused forever

    def test_counters(self):
        quota = QuotaLimiter(3)
        quota.try_acquire()
        assert quota.used == 1
        assert quota.remaining == 2

    def test_zero_quota(self):
        assert not QuotaLimiter(0).try_acquire()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QuotaLimiter(-1)
