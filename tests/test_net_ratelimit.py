"""Tests for rate limiting primitives."""

import pytest

from repro.net.ratelimit import PerMarketRateLimiter, QuotaLimiter, TokenBucket
from repro.util.simtime import SimClock


class TestTokenBucket:
    def test_burst_capacity(self):
        bucket = TokenBucket(SimClock(), rate=10, burst=3)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=1)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.2)  # 2 tokens worth, capped at burst=1
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_time_until_available(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=2, burst=1)
        bucket.try_acquire()
        assert bucket.time_until_available() == pytest.approx(0.5)

    def test_cap_at_burst(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=100, burst=2)
        clock.advance(10)
        assert bucket.available == pytest.approx(2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate=0, burst=1)

    def test_reserve_within_burst_is_free(self):
        bucket = TokenBucket(SimClock(), rate=10, burst=2)
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == 0.0

    def test_reserve_goes_negative_and_prices_the_wait(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=10, burst=1)
        assert bucket.reserve() == 0.0
        # Bucket is empty: the next reservation owes one token at 10/day.
        assert bucket.reserve() == pytest.approx(0.1)
        # Honoring the promised sleep clears the debt exactly.
        clock.advance(0.1)
        assert bucket.available == pytest.approx(0.0)
        assert bucket.reserve() == pytest.approx(0.1)

    def test_reserve_debt_accumulates(self):
        bucket = TokenBucket(SimClock(), rate=2, burst=1)
        bucket.reserve()
        assert bucket.reserve() == pytest.approx(0.5)
        assert bucket.reserve() == pytest.approx(1.0)


class TestPerMarketRateLimiter:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PerMarketRateLimiter(rate=0, burst=1)
        with pytest.raises(ValueError):
            PerMarketRateLimiter(rate=1, burst=0)

    def test_params_for_overrides(self):
        limiter = PerMarketRateLimiter(rate=100, burst=5, overrides={"gp": (2, 1)})
        assert limiter.params_for("gp") == (2, 1)
        assert limiter.params_for("tencent") == (100, 5)

    def test_bound_pacer_charges_the_right_market(self):
        limiter = PerMarketRateLimiter(rate=10, burst=1, overrides={"slow": (2, 1)})
        slow_clock, fast_clock = SimClock(), SimClock()
        slow = limiter.bind("slow", slow_clock)
        fast = limiter.bind("fast", fast_clock)
        assert slow() == 0.0  # burst token
        assert slow() == pytest.approx(0.5)  # 2/day ⇒ half a day owed
        assert fast() == 0.0
        assert limiter.sim_days_waited("slow") == pytest.approx(0.5)
        assert limiter.sim_days_waited("fast") == 0.0

    def test_unbound_market_has_no_waits(self):
        assert PerMarketRateLimiter(rate=1, burst=1).sim_days_waited("ghost") == 0.0

    def test_pacer_tracks_its_lane_clock(self):
        limiter = PerMarketRateLimiter(rate=4, burst=1)
        clock = SimClock()
        pace = limiter.bind("m", clock)
        pace()
        assert pace() == pytest.approx(0.25)
        clock.advance(0.25)  # the lane honors the sleep
        assert pace() == pytest.approx(0.25)
        assert limiter.sim_days_waited("m") == pytest.approx(0.5)


class TestQuotaLimiter:
    def test_exhausts(self):
        quota = QuotaLimiter(2)
        assert quota.try_acquire()
        assert quota.try_acquire()
        assert not quota.try_acquire()
        assert not quota.try_acquire()  # stays refused forever

    def test_counters(self):
        quota = QuotaLimiter(3)
        quota.try_acquire()
        assert quota.used == 1
        assert quota.remaining == 2

    def test_zero_quota(self):
        assert not QuotaLimiter(0).try_acquire()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QuotaLimiter(-1)
