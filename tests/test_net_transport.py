"""Frame codec and transport round-trips.

The digest oracle across transports rests on the frame codec being a
faithful bijection for every request/response shape the markets
produce — including the awkward ones (``json_ok(None)``, binary APK
bodies, timed 403 bans).
"""

import asyncio

import pytest

from repro.net.http import Request, Response
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    AsyncInProcessTransport,
    InProcessTransport,
    TransportError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    frame_length,
    pack_frame,
)


class TestRequestCodec:
    def test_round_trip(self):
        req = Request(
            path="/search",
            params={"q": "微信", "page": 3},
            headers={"x-sim-time": "2784.5", "authorization": "tok"},
        )
        back = decode_request(encode_request(req))
        assert back.path == req.path
        assert dict(back.params) == dict(req.params)
        assert dict(back.headers) == dict(req.headers)

    def test_empty_params_and_headers(self):
        back = decode_request(encode_request(Request("/login")))
        assert back.path == "/login"
        assert dict(back.params) == {}
        assert dict(back.headers) == {}

    def test_not_a_request_map(self):
        from repro.net import wire

        with pytest.raises(TransportError):
            decode_request(wire.encode({"status": 200}))
        with pytest.raises(TransportError):
            decode_request(wire.encode([1, 2, 3]))


class TestResponseCodec:
    def test_json_round_trip(self):
        resp = Response.json_ok({"hits": [1, 2], "total": 2})
        back = decode_response(encode_response(resp))
        assert back.status == 200
        assert back.json == {"hits": [1, 2], "total": 2}
        assert back.body is None

    def test_json_none_payload_survives(self):
        # A 200 whose payload IS None (a removed index slot) must not
        # decode into a bodyless 200 — json and body travel explicitly.
        back = decode_response(encode_response(Response.json_ok(None)))
        assert back.status == 200
        assert back.ok
        assert back.json is None
        assert back.body is None

    def test_bytes_round_trip(self):
        blob = bytes(range(256)) * 10
        back = decode_response(encode_response(Response.bytes_ok(blob)))
        assert back.body == blob
        assert back.json is None

    def test_retry_after_round_trip(self):
        back = decode_response(encode_response(Response.rate_limited(0.25)))
        assert back.status == 429
        assert back.retry_after == 0.25
        banned = decode_response(encode_response(Response.forbidden(2.0)))
        assert banned.status == 403
        assert banned.retry_after == 2.0

    def test_malformed_flag_round_trip(self):
        back = decode_response(encode_response(Response.garbled()))
        assert back.malformed is True

    def test_not_a_response_map(self):
        from repro.net import wire

        with pytest.raises(TransportError):
            decode_response(wire.encode({"path": "/x"}))


class TestFraming:
    def test_pack_prefixes_length(self):
        frame = pack_frame(b"abc")
        assert frame[:FRAME_HEADER_BYTES] == (3).to_bytes(FRAME_HEADER_BYTES, "big")
        assert frame[FRAME_HEADER_BYTES:] == b"abc"

    def test_frame_length_round_trip(self):
        assert frame_length(pack_frame(b"x" * 1000)[:FRAME_HEADER_BYTES]) == 1000

    def test_oversized_frame_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(FRAME_HEADER_BYTES, "big")
        with pytest.raises(TransportError):
            frame_length(header)


class TestInProcessTransports:
    def test_sync_wrapper_calls_handler(self):
        transport = InProcessTransport(lambda req: Response.json_ok(req.path))
        assert transport(Request("/x")).json == "/x"
        transport.close()  # no-op, but part of the surface

    def test_async_wrapper_awaits_handler(self):
        transport = AsyncInProcessTransport(lambda req: Response.json_ok(req.path))

        async def go():
            resp = await transport.send(Request("/y"))
            await transport.aclose()
            return resp

        assert asyncio.run(go()).json == "/y"
