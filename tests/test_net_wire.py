"""Property tests for the binary wire codec.

The hostile-market contract: any value a listing endpoint can emit —
including arbitrary Unicode text — round-trips bit-exactly, and the
encoding is canonical (same value, same bytes), so snapshots digest
identically whether a market answered JSON or wire.
"""

import math

import numpy as np
import pytest

from repro.net import wire
from repro.net.wire import WIRE_MAGIC, WireError, decode, encode, is_wire
from repro.util.text import app_display_name, cjk_display_name, package_name


def random_value(rng: np.random.Generator, depth: int = 0):
    """A random JSON-safe document, biased toward listing-like shapes."""
    roll = int(rng.integers(0, 10 if depth < 3 else 8))
    if roll == 0:
        return None
    if roll == 1:
        return bool(rng.integers(0, 2))
    if roll == 2:  # ints across the full arbitrary-precision range
        magnitude = int(rng.integers(0, 80))
        return int(rng.integers(-(2**62), 2**62)) * (2**magnitude)
    if roll == 3:
        return float(rng.normal() * 10 ** int(rng.integers(0, 9)))
    if roll == 4:
        return package_name(rng)
    if roll == 5:
        return cjk_display_name(rng)
    if roll == 6:
        return app_display_name(rng)
    if roll == 7:
        return bytes(rng.integers(0, 256, size=int(rng.integers(0, 20)), dtype=np.uint8))
    if roll == 8:
        return [random_value(rng, depth + 1) for _ in range(int(rng.integers(0, 5)))]
    return {
        cjk_display_name(rng) if rng.random() < 0.3 else package_name(rng):
            random_value(rng, depth + 1)
        for _ in range(int(rng.integers(0, 5)))
    }


class TestRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -1, 1, 0.0, -2.5, "", "x", b"", b"\x00"):
            assert decode(encode(value)) == value

    def test_extreme_ints(self):
        for value in (2**63, -(2**63), 2**200, -(2**200) - 1, 2**64 - 1):
            assert decode(encode(value)) == value

    def test_bool_int_distinction_survives(self):
        decoded = decode(encode([True, 1, False, 0]))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_non_ascii_text(self):
        doc = {"名前": "手机助手 Pro", "emoji": "🚀📱", "mixed": "app商店"}
        assert decode(encode(doc)) == doc

    def test_property_random_documents(self):
        rng = np.random.default_rng(2018)
        for _ in range(300):
            doc = random_value(rng)
            rebuilt = decode(encode(doc))
            assert rebuilt == doc or (
                isinstance(doc, float) and math.isnan(doc) and math.isnan(rebuilt)
            )

    def test_listing_metadata_round_trips(self, study):
        """Every live listing's real endpoint payload survives the wire."""
        store = study.stores["tencent"]
        count = 0
        for listing in store.iter_live(study.clock.now):
            meta = listing.metadata()
            assert decode(encode(meta)) == meta
            count += 1
        assert count > 0


class TestCanonical:
    def test_same_value_same_bytes(self):
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        for _ in range(50):
            assert encode(random_value(rng_a)) == encode(random_value(rng_b))

    def test_dict_order_is_preserved_not_sorted(self):
        # Canonical means deterministic given the value, and servers
        # build metadata dicts in a fixed field order — insertion order
        # is part of the bytes, like protobuf field numbers.
        assert encode({"a": 1, "b": 2}) != encode({"b": 2, "a": 1})
        assert decode(encode({"b": 2, "a": 1})) == {"a": 1, "b": 2}

    def test_magic_prefix(self):
        payload = encode({"x": 1})
        assert payload.startswith(WIRE_MAGIC)
        assert is_wire(payload)
        assert not is_wire(b'{"x": 1}')
        assert not is_wire(b"RW")


class TestErrors:
    def test_missing_magic(self):
        with pytest.raises(WireError):
            decode(b"\x00\x01\x02")

    def test_truncated_payload(self):
        payload = encode({"key": "value", "n": 123456789})
        for cut in range(len(WIRE_MAGIC) + 1, len(payload)):
            with pytest.raises(WireError):
                decode(payload[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(WireError):
            decode(encode([1, 2]) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(WireError):
            decode(WIRE_MAGIC + bytes((99,)))

    def test_unencodable_type(self):
        with pytest.raises(WireError):
            encode({"bad": object()})
        with pytest.raises(WireError):
            encode({1: "non-string key"})

    def test_runaway_varint(self):
        with pytest.raises(WireError):
            decode(WIRE_MAGIC + bytes((wire._TAG_INT,)) + b"\xff" * 200)
