"""End-to-end observability: a traced campaign and its artifacts.

The acceptance contract for the observability layer:

* a traced campaign exports schema-valid trace and metrics artifacts,
* the artifact totals *exactly* match the live ``stats_report()`` —
  telemetry is a view over the registry, so the re-rendered table is
  byte-identical,
* recording never perturbs the crawl: the traced snapshot's content
  digest equals the untraced one.
"""

import pytest

from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.telemetry import CrawlTelemetry
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.faults import FaultPlan
from repro.obs import NULL_OBS, Observability, counts_from_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_run_report
from repro.obs.schema import validate_metrics_file, validate_trace_file
from repro.util.simtime import FIRST_CRAWL_DAY, SimClock

SEED = 11
SCALE = 0.0001
BLACKOUT = {"oppo": FaultPlan.blackout(FIRST_CRAWL_DAY, 20.0)}


@pytest.fixture(scope="module")
def world():
    return EcosystemGenerator(seed=SEED, scale=SCALE).generate()


def _crawl(world, obs: Observability, market_faults=None):
    clock = SimClock()
    market_faults = market_faults or {}
    servers = {
        m: MarketServer(store, clock, faults=market_faults.get(m))
        for m, store in build_stores(world).items()
    }
    coordinator = CrawlCoordinator(
        servers, clock, download_apks=False, workers=2, obs=obs
    )
    return coordinator.crawl("first", duration_days=15.0)


@pytest.fixture(scope="module")
def traced(world, tmp_path_factory):
    obs = Observability.from_flags(trace=True, metrics=True)
    snapshot = _crawl(world, obs)
    outdir = tmp_path_factory.mktemp("artifacts")
    trace_path = outdir / "trace.jsonl"
    metrics_path = outdir / "metrics.jsonl"
    obs.export_trace(trace_path)
    obs.export_metrics(metrics_path)
    return snapshot, obs, trace_path, metrics_path


class TestTracedCampaign:
    def test_artifacts_are_schema_valid(self, traced):
        _, _, trace_path, metrics_path = traced
        assert len(validate_trace_file(trace_path)) > 0
        assert len(validate_metrics_file(metrics_path)) > 0

    def test_tracing_does_not_perturb_the_crawl(self, world, traced):
        snapshot, _, _, _ = traced
        untraced = _crawl(world, NULL_OBS)
        assert snapshot.content_digest() == untraced.content_digest()

    def test_campaign_is_one_trace(self, traced):
        _, obs, _, _ = traced
        campaign_spans = obs.tracer.spans("crawl.campaign")
        assert len(campaign_spans) == 1
        assert campaign_spans[0]["trace_id"] == "first"
        # Phase spans parent to the campaign root.
        root_id = campaign_spans[0]["span_id"]
        discoveries = obs.tracer.spans("crawl.discovery")
        assert discoveries
        assert all(s["parent_id"] == root_id for s in discoveries)

    def test_request_spans_roll_up_to_telemetry(self, traced):
        snapshot, obs, _, _ = traced
        telemetry = snapshot.stats.telemetry
        spans = obs.tracer.spans("http.request")
        # Attempts across logical requests == the client counters the
        # telemetry folded in (the span covers the whole retry loop).
        attempts = sum(s["attrs"]["attempts"] for s in spans)
        assert attempts == telemetry.total_requests
        retries = sum(s["attrs"]["retries"] for s in spans)
        assert retries == telemetry.total_retries

    def test_exported_metrics_match_stats_report_exactly(self, traced):
        snapshot, _, _, metrics_path = traced
        telemetry = snapshot.stats.telemetry
        registry = MetricsRegistry()
        registry.load_dicts(validate_metrics_file(metrics_path))
        rendered = CrawlTelemetry.from_registry(
            "first", registry, markets=list(telemetry.markets)
        )
        assert rendered.stats_report() == telemetry.stats_report()
        assert rendered.total_requests == telemetry.total_requests
        assert rendered.total_records == telemetry.total_records
        assert rendered.wall_seconds == telemetry.wall_seconds

    def test_run_report_contains_the_live_table(self, traced):
        snapshot, _, trace_path, metrics_path = traced
        report = render_run_report(trace_path, metrics_path)
        assert snapshot.stats.telemetry.stats_report() in report
        assert "http.request" in report

    def test_span_summary_counts(self, traced):
        _, obs, _, _ = traced
        summary = counts_from_spans(obs.tracer.records())
        assert summary["crawl.campaign"][0] == 1
        assert summary["crawl.discovery"][0] == 17
        assert summary["http.request"][0] > 0


class TestFaultyTracedCampaign:
    def test_breaker_events_and_failed_spans_recorded(self, world):
        obs = Observability.from_flags(trace=True, metrics=True)
        snapshot = _crawl(world, obs, market_faults=BLACKOUT)
        assert "oppo" in snapshot.degraded_markets()
        transitions = obs.tracer.events("breaker.transition")
        assert any(e["market"] == "oppo" for e in transitions)
        assert any(
            e["attrs"]["to_state"] == "open" for e in transitions
        )
        # The quarantining trip is visible on its transition event.
        assert any(e["attrs"].get("quarantined") for e in transitions)
        failed = [
            s for s in obs.tracer.spans("http.request") if s["status"] != "ok"
        ]
        assert failed

    def test_degraded_market_rendered_in_run_report(self, world, tmp_path):
        obs = Observability.from_flags(trace=True, metrics=True)
        _crawl(world, obs, market_faults=BLACKOUT)
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        obs.export_trace(trace_path)
        obs.export_metrics(metrics_path)
        report = render_run_report(trace_path, metrics_path)
        assert "degraded markets (breaker quarantine): oppo" in report
        assert "breaker transitions:" in report
        assert "QUARANTINED" in report
