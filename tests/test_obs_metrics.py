"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_metrics_file


class TestSeries:
    def test_counter_increments_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", market="baidu")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins_and_samples(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(5)
        gauge.set(3, at=1.25)
        gauge.set(8, at=2.0)
        assert gauge.value == 8
        assert gauge.samples == [(1.25, 3.0), (2.0, 8.0)]

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == pytest.approx(56.05)
        assert hist.counts == [1, 2, 1, 1]  # last = +Inf overflow

    def test_histogram_requires_sorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 0.5))


class TestRegistry:
    def test_same_name_and_labels_share_a_series(self):
        registry = MetricsRegistry()
        a = registry.counter("req_total", market="baidu", campaign="first")
        b = registry.counter("req_total", campaign="first", market="baidu")
        assert a is b
        assert registry.counter("req_total", market="oppo") is not a
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_label_values(self):
        registry = MetricsRegistry()
        registry.counter("req_total", market="baidu")
        registry.counter("req_total", market="oppo")
        registry.counter("other", market="xiaomi")
        assert registry.label_values("req_total", "market") == ["baidu", "oppo"]

    def test_series_order_is_stable(self):
        registry = MetricsRegistry()
        registry.counter("b_metric")
        registry.counter("a_metric", market="z")
        registry.counter("a_metric", market="a")
        names = [(s.name, dict(s.labels).get("market")) for s in registry.series()]
        assert names == [("a_metric", "a"), ("a_metric", "z"), ("b_metric", None)]


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("req_total", market="baidu", campaign="first").inc(41)
        gauge = registry.gauge("queue_depth", campaign="first")
        gauge.set(3, at=0.5)
        gauge.set(9, at=1.5)
        hist = registry.histogram("latency", buckets=(0.1, 1.0), market="baidu")
        for value in (0.05, 0.5, 7.0):
            hist.observe(value)
        return registry

    def test_jsonl_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.jsonl"
        assert registry.export_jsonl(path) == 3
        docs = validate_metrics_file(path)

        rehydrated = MetricsRegistry()
        assert rehydrated.load_dicts(docs) == 3
        assert rehydrated.to_dicts() == registry.to_dicts()
        # The round-tripped histogram kept its overflow bucket.
        hist = rehydrated.histogram("latency", buckets=(0.1, 1.0), market="baidu")
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3

    def test_prometheus_exposition(self):
        text = self._populated().render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{campaign="first",market="baidu"} 41' in text
        assert "# TYPE queue_depth gauge" in text
        assert 'queue_depth{campaign="first"} 9' in text
        # Histogram buckets are cumulative, closed by +Inf / sum / count.
        assert 'latency_bucket{le="0.1",market="baidu"} 1' in text
        assert 'latency_bucket{le="1",market="baidu"} 2' in text
        assert 'latency_bucket{le="+Inf",market="baidu"} 3' in text
        assert 'latency_sum{market="baidu"} 7.55' in text
        assert 'latency_count{market="baidu"} 3' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", label='say "hi"\\now').inc()
        assert r'c{label="say \"hi\"\\now"} 1' in registry.render_prometheus()

    def test_prometheus_escapes_newlines_in_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", label="line1\nline2").inc()
        text = registry.render_prometheus()
        # The exposition format is line-oriented: a raw newline inside a
        # label value would split the sample across two lines.
        assert r'c{label="line1\nline2"} 1' in text
        for line in text.splitlines():
            assert line.startswith(("#", "c{"))

    def test_prometheus_escape_order_backslash_first(self):
        # A value that is literally backslash-n must not collide with an
        # escaped newline: \n (2 chars) renders as \\n, "\n" as \n.
        registry = MetricsRegistry()
        registry.counter("c", label="\\n").inc()
        assert 'c{label="\\\\n"} 1' in registry.render_prometheus()

    def test_prometheus_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_prometheus_inf_bucket_is_cumulative_total(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 100.0, 200.0):
            hist.observe(value)
        text = registry.render_prometheus()
        # +Inf closes the cumulative series at the full observation
        # count, overflow included.
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_gauge_samples_survive_export_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", campaign="first")
        gauge.set(5.0, at=0.25)
        gauge.set(2.0, at=1.75)
        gauge.set(9.0, at=3.5)
        path = tmp_path / "metrics.jsonl"
        registry.export_jsonl(path)

        rehydrated = MetricsRegistry()
        rehydrated.load_dicts(validate_metrics_file(path))
        loaded = rehydrated.gauge("depth", campaign="first")
        assert loaded.value == 9.0
        assert loaded.samples == [(0.25, 5.0), (1.75, 2.0), (3.5, 9.0)]

    def test_load_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.load_dicts([{"kind": "summary", "name": "x", "value": 1}])
