"""Tests for the live campaign monitor and the folded-stacks export."""

import pytest

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.obs import NULL_OBS, Observability
from repro.obs.flame import export_folded, folded_stacks
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import (
    HEARTBEAT_METRIC,
    STALL_METRIC,
    CampaignMonitor,
)
from repro.obs.trace import SpanTracer
from repro.util.simtime import SimClock


class _FakeLane:
    def __init__(self, clock):
        self.clock = clock


class _FakeEngine:
    """Just enough engine surface for the monitor: lanes and back-off."""

    def __init__(self, market_ids):
        self.market_ids = list(market_ids)
        self._lanes = {m: _FakeLane(SimClock(now=0.0)) for m in market_ids}

    def lane(self, market_id):
        return self._lanes[market_id]

    @property
    def max_lane_backoff(self):
        return max(lane.clock.now for lane in self._lanes.values())


class _FakeMarket:
    def __init__(self):
        self.records = 0


class _FakeTelemetry:
    def __init__(self, market_ids):
        self._markets = {m: _FakeMarket() for m in market_ids}
        self.total_requests = 0
        self.total_dead_letters = 0

    def market(self, market_id):
        return self._markets[market_id]

    @property
    def total_records(self):
        return sum(m.records for m in self._markets.values())


def _monitored(market_ids=("baidu",), interval=1.0, stall_budget=5.0,
               tracer=None):
    registry = MetricsRegistry()
    monitor = CampaignMonitor(
        registry, tracer=tracer, interval=interval, stall_budget=stall_budget
    )
    engine = _FakeEngine(market_ids)
    telemetry = _FakeTelemetry(market_ids)
    clock = SimClock(now=0.0)
    monitor.begin("first", engine, telemetry, clock)
    return monitor, registry, engine, telemetry


class TestHeartbeat:
    def test_catches_up_missed_intervals(self):
        monitor, registry, engine, telemetry = _monitored(interval=1.0)
        telemetry.total_requests = 40
        telemetry.market("baidu").records = 4
        # The fleet jumped 3.5 simulated days between phase boundaries:
        # the monitor back-fills a beat for every elapsed interval.
        engine.lane("baidu").clock.advance(3.5)
        monitor.tick("search")
        assert monitor.heartbeats == 3
        gauge = registry.gauge("monitor_requests_total", campaign="first")
        assert gauge.samples == [(1.0, 40.0), (2.0, 40.0), (3.0, 40.0)]
        counter = registry.counter(HEARTBEAT_METRIC, campaign="first")
        assert counter.value == 3

    def test_no_beat_before_interval(self):
        monitor, registry, engine, _ = _monitored(interval=1.0)
        engine.lane("baidu").clock.advance(0.5)
        monitor.tick("search")
        assert monitor.heartbeats == 0

    def test_finish_emits_final_beat_and_clears(self):
        tracer = SpanTracer()
        monitor, registry, engine, _ = _monitored(tracer=tracer)
        monitor.finish()
        assert monitor.heartbeats == 1
        events = tracer.events("monitor.heartbeat")
        assert len(events) == 1
        assert events[0]["attrs"]["phase"] == "finish"
        # After finish the monitor is idle: ticks are no-ops.
        monitor.tick("search")
        assert monitor.heartbeats == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CampaignMonitor(MetricsRegistry(), interval=0)
        with pytest.raises(ValueError):
            CampaignMonitor(MetricsRegistry(), stall_budget=-1)


class TestWatchdog:
    def test_stall_fires_once_and_rearms_on_progress(self):
        tracer = SpanTracer()
        monitor, registry, engine, telemetry = _monitored(
            stall_budget=5.0, tracer=tracer
        )
        lane = engine.lane("baidu")

        # 6 idle days with no records: one stall, not one per tick.
        lane.clock.advance(6.0)
        monitor.tick("search")
        monitor.tick("search")
        assert monitor.stalls == 1
        counter = registry.counter(STALL_METRIC, campaign="first", market="baidu")
        assert counter.value == 1
        events = tracer.events("lane.stalled")
        assert len(events) == 1
        assert events[0]["market"] == "baidu"
        assert events[0]["attrs"]["idle_days"] == pytest.approx(6.0)

        # Progress re-arms the watchdog...
        telemetry.market("baidu").records = 10
        monitor.tick("search")
        assert monitor.stalls == 1
        # ...and a second stall is counted again.
        lane.clock.advance(6.0)
        monitor.tick("search")
        assert monitor.stalls == 2
        assert counter.value == 2

    def test_progressing_lane_never_stalls(self):
        monitor, _, engine, telemetry = _monitored(stall_budget=2.0)
        lane = engine.lane("baidu")
        for step in range(1, 6):
            lane.clock.advance(1.5)
            telemetry.market("baidu").records = step
            monitor.tick("search")
        assert monitor.stalls == 0

    def test_only_the_stalled_lane_is_flagged(self):
        monitor, registry, engine, telemetry = _monitored(
            market_ids=("baidu", "oppo"), stall_budget=3.0
        )
        engine.lane("baidu").clock.advance(4.0)
        engine.lane("oppo").clock.advance(4.0)
        telemetry.market("oppo").records = 7
        monitor.tick("search")
        assert monitor.stalls == 1
        assert registry.counter(
            STALL_METRIC, campaign="first", market="baidu"
        ).value == 1


class TestMonitoredCrawl:
    def test_monitor_does_not_perturb_the_snapshot(self):
        world = EcosystemGenerator(seed=5, scale=0.0001).generate()

        def crawl(obs):
            clock = SimClock()
            servers = {
                m: MarketServer(store, clock)
                for m, store in build_stores(world).items()
            }
            coordinator = CrawlCoordinator(
                servers, clock, download_apks=False, workers=1, obs=obs
            )
            return coordinator.crawl("first", duration_days=5.0)

        plain = crawl(NULL_OBS)
        obs = Observability.from_flags(
            trace=True, metrics=True, monitor=True
        )
        monitored = crawl(obs)
        assert monitored.content_digest() == plain.content_digest()
        assert obs.monitor.heartbeats > 0
        # The heartbeat series landed in the registry for export.
        docs = {d["name"] for d in obs.metrics.to_dicts()}
        assert "monitor_requests_total" in docs
        assert HEARTBEAT_METRIC in docs


def _span(span_id, name, wall, parent_id=None, market=None):
    doc = {
        "kind": "span",
        "trace_id": "first",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "wall_seconds": wall,
    }
    if market is not None:
        doc["market"] = market
    return doc


class TestFoldedStacks:
    def test_self_time_weights_and_nesting(self):
        records = [
            _span(1, "campaign", 1.0),
            _span(2, "discovery", 0.25, parent_id=1, market="baidu"),
            _span(3, "http.request", 0.10, parent_id=2, market="baidu"),
            {"kind": "event", "trace_id": "first", "span_id": 2,
             "name": "breaker.transition"},
        ]
        folded = dict(folded_stacks(records))
        # Self time: campaign 1.0 - 0.25, discovery 0.25 - 0.10.
        assert folded["campaign"] == 750_000
        assert folded["campaign;discovery[baidu]"] == 150_000
        assert folded["campaign;discovery[baidu];http.request[baidu]"] == 100_000

    def test_identical_stacks_fold_and_negatives_clamp(self):
        records = [
            _span(1, "campaign", 0.1),
            # Concurrent lanes: children legitimately out-sum the parent.
            _span(2, "lane", 0.08, parent_id=1),
            _span(3, "lane", 0.07, parent_id=1),
        ]
        folded = dict(folded_stacks(records))
        assert folded["campaign"] == 0  # clamped, not negative
        assert folded["campaign;lane"] == 150_000  # summed across spans

    def test_orphan_parent_roots_children(self):
        records = [_span(5, "late", 0.5, parent_id=99)]
        assert folded_stacks(records) == [("late", 500_000)]

    def test_reserved_separators_are_rewritten(self):
        records = [_span(1, "a;b c", 0.001, market="m x")]
        stacks = dict(folded_stacks(records))
        assert "a,b_c[m_x]" in stacks

    def test_export_is_byte_stable(self, tmp_path):
        records = [
            _span(1, "campaign", 1.0),
            _span(2, "b", 0.2, parent_id=1),
            _span(3, "a", 0.3, parent_id=1),
        ]
        first, second = tmp_path / "a.folded", tmp_path / "b.folded"
        assert export_folded(records, first) == 3
        assert export_folded(list(reversed(records)), second) == 3
        assert first.read_bytes() == second.read_bytes()
        # Lexicographic line order, "stack weight" format.
        lines = first.read_text().splitlines()
        assert lines == sorted(lines)
        assert lines[0].rsplit(" ", 1)[1].isdigit()
