"""Tests for the stage profiler."""

from repro.crawler.telemetry import CrawlTelemetry
from repro.obs.profiler import StageProfiler


class TestStageProfiler:
    def test_records_wall_time_per_stage(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("ecosystem"):
            pass
        with profiler.stage("crawl"):
            pass
        assert [r.name for r in profiler.records] == ["ecosystem", "crawl"]
        assert all(r.wall_seconds >= 0 for r in profiler.records)

    def test_nested_stage_depth(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("outer"):
            with profiler.stage("inner"):
                pass
        inner, outer = profiler.records
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)

    def test_peak_memory_tracked(self):
        profiler = StageProfiler()
        with profiler.stage("alloc"):
            blob = bytearray(4 * 1024 * 1024)
            del blob
        (record,) = profiler.records
        assert record.peak_bytes >= 4 * 1024 * 1024

    def test_nested_peaks_fold_into_parent(self):
        profiler = StageProfiler()
        with profiler.stage("outer"):
            with profiler.stage("inner"):
                blob = bytearray(4 * 1024 * 1024)
                del blob
        inner, outer = profiler.records
        assert inner.peak_bytes >= 4 * 1024 * 1024
        # The child's peak must not vanish from the enclosing stage.
        assert outer.peak_bytes >= inner.peak_bytes

    def test_parent_segment_peak_survives_child_reset(self):
        profiler = StageProfiler()
        with profiler.stage("outer"):
            blob = bytearray(8 * 1024 * 1024)
            del blob
            with profiler.stage("inner"):
                pass
        inner, outer = profiler.records
        assert outer.peak_bytes >= 8 * 1024 * 1024
        assert inner.peak_bytes < 8 * 1024 * 1024

    def test_stage_exception_still_records(self):
        profiler = StageProfiler(trace_memory=False)
        try:
            with profiler.stage("doomed"):
                raise ValueError("nope")
        except ValueError:
            pass
        assert [r.name for r in profiler.records] == ["doomed"]


class TestReport:
    def test_empty(self):
        assert "no stages" in StageProfiler().report()

    def test_report_table_and_critical_path(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("fast"):
            pass
        with profiler.stage("slow"):
            total = sum(range(200_000))
            assert total > 0
        report = profiler.report()
        assert "stage profile" in report
        assert "fast" in report and "slow" in report
        assert "critical path: slowest stage 'slow'" in report
        assert "peak memory:" in report

    def test_critical_path_ignores_nested_stages(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("outer"):
            with profiler.stage("inner"):
                total = sum(range(100_000))
                assert total > 0
        report = profiler.report()
        # inner's time is inside outer's; only outer competes.
        assert "slowest stage 'outer'" in report

    def test_slowest_lane_from_telemetry(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("crawl"):
            pass
        telemetry = CrawlTelemetry(label="t")
        quick = telemetry.market("oppo")
        quick.requests, quick.sim_days_backoff = 10, 0.5
        slow = telemetry.market("google_play")
        slow.requests, slow.sim_days_backoff, slow.sim_days_paced = 90, 1.5, 0.75
        report = profiler.report(telemetry)
        assert "slowest lane:  'google_play' waited 2.2500 sim days" in report
        assert "over 90 requests" in report

    def test_report_without_telemetry_has_no_lane_line(self):
        profiler = StageProfiler(trace_memory=False)
        with profiler.stage("crawl"):
            pass
        assert "slowest lane" not in profiler.report()
