"""Tests for artifact schemas and the run-report renderer."""

import json

import pytest

from repro.obs import Observability
from repro.obs.report import render_run_report
from repro.obs.schema import (
    SchemaError,
    validate_metrics_obj,
    validate_trace_obj,
)


def _span(**over) -> dict:
    doc = {
        "kind": "span", "trace_id": "t", "span_id": 1, "parent_id": None,
        "name": "s", "status": "ok", "wall_start": 1.0, "wall_seconds": 0.5,
        "sim_start": None, "sim_end": None,
    }
    doc.update(over)
    return doc


def _metric(**over) -> dict:
    doc = {"kind": "counter", "name": "m", "labels": {}, "value": 1.0}
    doc.update(over)
    return doc


class TestTraceSchema:
    def test_valid_span(self):
        validate_trace_obj(_span(market="baidu", attrs={"path": "/app"}))

    def test_valid_event(self):
        validate_trace_obj({
            "kind": "event", "trace_id": "t", "span_id": None, "name": "e",
            "wall_start": 1.0, "sim_time": 2.0,
        })

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="kind"):
            validate_trace_obj({"kind": "metric"})

    def test_missing_required_field(self):
        doc = _span()
        del doc["wall_seconds"]
        with pytest.raises(SchemaError, match="wall_seconds"):
            validate_trace_obj(doc)

    def test_wrong_type(self):
        with pytest.raises(SchemaError, match="span_id"):
            validate_trace_obj(_span(span_id="one"))

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError, match="wall_seconds"):
            validate_trace_obj(_span(wall_seconds=True))

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            validate_trace_obj(_span(extra=1))


class TestMetricsSchema:
    def test_valid_counter(self):
        validate_metrics_obj(_metric(labels={"market": "baidu"}))

    def test_valid_histogram(self):
        validate_metrics_obj(_metric(
            kind="histogram", count=3, buckets=[[0.1, 2], [1.0, 1]], overflow=0,
        ))

    def test_histogram_requires_buckets(self):
        with pytest.raises(SchemaError, match="histogram"):
            validate_metrics_obj(_metric(kind="histogram", count=3))

    def test_non_string_label_value(self):
        with pytest.raises(SchemaError, match="labels"):
            validate_metrics_obj(_metric(labels={"market": 3}))

    def test_bad_sample_pair(self):
        with pytest.raises(SchemaError, match="samples"):
            validate_metrics_obj(_metric(kind="gauge", samples=[[1.0]]))


class TestRenderRunReport:
    def _artifacts(self, tmp_path):
        """A tiny synthetic campaign, recorded then exported."""
        from repro.crawler.telemetry import CrawlTelemetry

        obs = Observability.from_flags(trace=True, metrics=True)
        obs.tracer.set_trace("first")
        telemetry = CrawlTelemetry(
            label="first", workers=4, registry=obs.metrics
        )
        lane = telemetry.market("baidu")
        with obs.span("crawl.discovery", market="baidu"):
            lane.requests += 12
            lane.records += 5
        telemetry.market("oppo").health = "degraded"
        telemetry.wall_seconds = 2.0
        obs.event(
            "breaker.transition", market="oppo", sim_time=1.0,
            from_state="closed", to_state="open", trips=4, quarantined=True,
        )
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        obs.export_trace(trace)
        obs.export_metrics(metrics)
        return trace, metrics, telemetry

    def test_metrics_section_reproduces_stats_report(self, tmp_path):
        _, metrics, telemetry = self._artifacts(tmp_path)
        report = render_run_report(metrics_path=metrics)
        # The artifact re-renders through the same view class: the
        # operator table appears verbatim, byte for byte.
        assert telemetry.stats_report() in report

    def test_trace_section_summarizes_spans_and_transitions(self, tmp_path):
        trace, _, _ = self._artifacts(tmp_path)
        report = render_run_report(trace_path=trace)
        assert "crawl.discovery" in report
        assert "breaker transitions:" in report
        assert "oppo: closed -> open (trip 4) QUARANTINED" in report

    def test_requires_at_least_one_artifact(self):
        with pytest.raises(ValueError):
            render_run_report()

    def test_invalid_artifact_fails_loudly(self, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text(json.dumps({"kind": "span"}) + "\n")
        with pytest.raises(SchemaError):
            render_run_report(trace_path=bad)
