"""Tests for the span tracer."""

import threading

import pytest

from repro.obs.schema import validate_trace_file
from repro.obs.trace import NULL_SPAN, NullSpan, SpanTracer
from repro.util.simtime import SimClock


class TestNullSpan:
    def test_is_a_shared_noop_context(self):
        with NULL_SPAN as span:
            span["anything"] = 1
        assert isinstance(NULL_SPAN, NullSpan)
        # Re-enterable and stateless: the same instance serves everyone.
        with NULL_SPAN as again:
            assert again is NULL_SPAN

    def test_swallows_no_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_SPAN:
                raise RuntimeError("boom")


class TestSpanTracer:
    def test_records_name_trace_and_wall_time(self):
        tracer = SpanTracer()
        tracer.set_trace("first")
        with tracer.span("crawl.discovery", market="tencent"):
            pass
        (record,) = tracer.spans()
        assert record["name"] == "crawl.discovery"
        assert record["trace_id"] == "first"
        assert record["market"] == "tencent"
        assert record["status"] == "ok"
        assert record["wall_seconds"] >= 0
        assert record["parent_id"] is None

    def test_nesting_sets_parentage(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, recorded_outer = tracer.spans()
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer.span_id
        assert recorded_outer["parent_id"] is None

    def test_sim_clock_read_at_entry_and_exit(self):
        tracer = SpanTracer()
        clock = SimClock()
        start = clock.advance(2.0)
        with tracer.span("work", clock=clock):
            clock.advance(0.5)
        (record,) = tracer.spans()
        assert record["sim_start"] == start
        assert record["sim_end"] == start + 0.5

    def test_exception_sets_status_and_still_records(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("nope")
        (record,) = tracer.spans()
        assert record["status"] == "ValueError"

    def test_attrs_via_setitem_and_kwargs(self):
        tracer = SpanTracer()
        with tracer.span("s", path="/app") as span:
            span["records"] = 7
        (record,) = tracer.spans()
        assert record["attrs"] == {"path": "/app", "records": 7}

    def test_parentage_is_per_thread(self):
        tracer = SpanTracer()
        seen = {}

        def lane():
            with tracer.span("lane-root") as span:
                seen["lane_parent"] = span.parent_id

        with tracer.span("main-root"):
            worker = threading.Thread(target=lane)
            worker.start()
            worker.join()
        # The other thread's stack is empty: no cross-thread parentage.
        assert seen["lane_parent"] is None

    def test_events_attach_to_current_span(self):
        tracer = SpanTracer()
        with tracer.span("campaign") as span:
            tracer.event(
                "breaker.transition", market="oppo", sim_time=1.5,
                from_state="closed", to_state="open",
            )
        (event,) = tracer.events()
        assert event["span_id"] == span.span_id
        assert event["market"] == "oppo"
        assert event["sim_time"] == 1.5
        assert event["attrs"]["to_state"] == "open"

    def test_span_ids_unique_across_threads(self):
        tracer = SpanTracer()

        def burst():
            for _ in range(50):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=burst) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [r["span_id"] for r in tracer.spans()]
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_export_jsonl_is_schema_valid(self, tmp_path):
        tracer = SpanTracer()
        tracer.set_trace("t")
        with tracer.span("a", market="baidu", clock=SimClock()):
            tracer.event("e", sim_time=0.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        records = validate_trace_file(path)
        assert [r["kind"] for r in records] == ["event", "span"]
