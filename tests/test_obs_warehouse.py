"""Tests for the run warehouse and the SLO rule engine."""

import json

import pytest

from repro.core.config import StudyConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import StageProfiler
from repro.obs.results import BenchResults, load_bench_artifact
from repro.obs.schema import SchemaError
from repro.obs.slo import (
    FAIL,
    PASS,
    SKIP,
    SloError,
    check_passed,
    check_run,
    load_rules,
    render_check_report,
)
from repro.obs.trace import SpanTracer
from repro.obs.warehouse import (
    RUN_SCHEMA,
    RunWarehouse,
    WarehouseError,
    config_fingerprint,
    is_timing_metric,
    robust_score,
)


def _write_metrics(path, wall=1.5, records=100, dead_letters=0):
    registry = MetricsRegistry()
    registry.counter(
        "crawl_requests_total", campaign="first", market="baidu"
    ).inc(200)
    registry.counter(
        "crawl_records_total", campaign="first", market="baidu"
    ).inc(records)
    registry.counter(
        "crawl_dead_letters_total", campaign="first", market="baidu"
    ).inc(dead_letters)
    registry.counter("crawl_wall_seconds", campaign="first").inc(wall)
    hist = registry.histogram(
        "http_request_wall_seconds", buckets=(0.001, 0.01, 0.1), market="baidu"
    )
    for value in (0.0005, 0.0005, 0.005, 0.05):
        hist.observe(value)
    registry.export_jsonl(path)
    return path


def _write_trace(path):
    tracer = SpanTracer()
    tracer.set_trace("first")
    with tracer.span("crawl.campaign", root=True):
        with tracer.span("crawl.discovery", market="baidu"):
            pass
        tracer.event("breaker.transition", market="baidu", sim_time=1.0)
    tracer.export_jsonl(path)
    return path


def _write_profile(path):
    profiler = StageProfiler(trace_memory=False)
    with profiler.stage("ecosystem"):
        pass
    with profiler.stage("crawl.first"):
        pass
    profiler.export_jsonl(path)
    return path


def _meta(seed=7, wall_marker=0):
    """A run manifest; ``wall_marker`` only distinguishes artifact bytes."""
    return {
        "schema": RUN_SCHEMA,
        "label": f"study-seed{seed}",
        "seed": seed,
        "scale": 0.001,
        "config": {"seed": seed, "scale": 0.001, "download_apks": True,
                   "crawl_workers": 1 + wall_marker},
        "digests": {"snapshot": 12345},
    }


def _ingest(warehouse, tmp_path, tag, seed=7, wall=1.5, records=100,
            dead_letters=0, bench=()):
    metrics = _write_metrics(
        tmp_path / f"metrics-{tag}.jsonl", wall=wall, records=records,
        dead_letters=dead_letters,
    )
    trace = _write_trace(tmp_path / f"trace-{tag}.jsonl")
    profile = _write_profile(tmp_path / f"profile-{tag}.jsonl")
    return warehouse.ingest_run(
        meta=_meta(seed=seed), metrics=metrics, trace=trace, profile=profile,
        bench=bench,
    )


class TestConfigFingerprint:
    def test_digest_invariant_fields_do_not_change_it(self):
        base = StudyConfig(seed=7, scale=0.001)
        wide = StudyConfig(
            seed=7, scale=0.001, crawl_workers=8, analysis_workers=4,
            gen_workers=4, store_backend="sqlite", monitor=True,
            monitor_interval=0.5, stall_budget=2.0, profile=True,
            trace_out="t.jsonl", metrics_out="m.jsonl",
        )
        assert config_fingerprint(base) == config_fingerprint(wide)

    def test_behavior_fields_change_it(self):
        base = StudyConfig(seed=7, scale=0.001)
        assert config_fingerprint(base) != config_fingerprint(
            StudyConfig(seed=8, scale=0.001)
        )
        assert config_fingerprint(base) != config_fingerprint(
            StudyConfig(seed=7, scale=0.001, hostility="full", identity_pool=4)
        )

    def test_accepts_plain_mapping(self):
        config = StudyConfig(seed=7, scale=0.001)
        from dataclasses import asdict

        assert config_fingerprint(asdict(config)) == config_fingerprint(config)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            config_fingerprint(42)


class TestTimingClassifier:
    def test_wall_series_are_timing(self):
        assert is_timing_metric("crawl_wall_seconds")
        assert is_timing_metric("http_request_wall_seconds")

    def test_counters_are_deterministic(self):
        assert not is_timing_metric("crawl_requests_total")
        assert not is_timing_metric("monitor_heartbeats_total")


class TestIngest:
    def test_ingest_and_query(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            manifest = _ingest(warehouse, tmp_path, "a")
            assert manifest["created"]
            assert manifest["label"] == "study-seed7"
            assert manifest["fingerprint"]
            assert manifest["counts"]["metrics"] > 0
            assert manifest["counts"]["stages"] == 2
            assert warehouse.metric_total(
                manifest["run_id"], "crawl_requests_total"
            ) == 200
            assert set(warehouse.stage_walls(manifest["run_id"])) == {
                "ecosystem", "crawl.first"
            }

    def test_reingest_identical_artifacts_dedups(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            metrics = _write_metrics(tmp_path / "m.jsonl")
            first = warehouse.ingest_run(meta=_meta(), metrics=metrics)
            again = warehouse.ingest_run(meta=_meta(), metrics=metrics)
            assert first["created"]
            assert not again["created"]
            assert again["run_id"] == first["run_id"]
            assert len(warehouse.runs()) == 1

    def test_rejects_unknown_meta_schema(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            with pytest.raises(SchemaError):
                warehouse.ingest_run(meta={"schema": "repro.run/99"})

    def test_bench_artifact_round_trip(self, tmp_path):
        artifact = BenchResults(
            "obs", seed=7, scale=0.0002, path=tmp_path / "BENCH_obs.json"
        ).record("monitor_overhead", ratio=1.01, baseline_s=1.0)
        name, meta, sections = load_bench_artifact(artifact)
        assert name == "obs"
        assert meta["schema_version"] == 1
        assert sections["monitor_overhead"]["ratio"] == 1.01
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            manifest = _ingest(warehouse, tmp_path, "a", bench=[artifact])
            assert warehouse.bench_value(
                manifest["run_id"], "obs", "monitor_overhead", "ratio"
            ) == 1.01

    def test_legacy_flat_bench_artifact_loads(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"bench": {"speedup": 2.5}}))
        name, meta, sections = load_bench_artifact(path)
        assert name == "old"
        assert meta == {}
        assert sections["bench"]["speedup"] == 2.5


class TestRunRefs:
    def test_negative_index_prefix_and_label(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            a = _ingest(warehouse, tmp_path, "a", wall=1.5)
            b = _ingest(warehouse, tmp_path, "b", wall=1.7)
            assert warehouse.run("-1")["run_id"] == b["run_id"]
            assert warehouse.run("-2")["run_id"] == a["run_id"]
            assert warehouse.run(a["run_id"][:8])["run_id"] == a["run_id"]
            # A label resolves to its most recent run.
            assert warehouse.run("study-seed7")["run_id"] == b["run_id"]

    def test_bad_refs_raise(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            with pytest.raises(WarehouseError):
                warehouse.run("-1")  # empty warehouse
            _ingest(warehouse, tmp_path, "a", wall=1.5)
            _ingest(warehouse, tmp_path, "b", wall=1.7)
            with pytest.raises(WarehouseError):
                warehouse.run("no-such-run")
            with pytest.raises(WarehouseError):
                warehouse.run("-3")


class TestDiff:
    def test_same_config_runs_diff_clean(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            _ingest(warehouse, tmp_path, "a", wall=1.5)
            _ingest(warehouse, tmp_path, "b", wall=1.8)
            diff = warehouse.diff("-2", "-1")
            assert diff["clean"]
            assert diff["same_fingerprint"]
            assert not diff["mismatches"]
            timing = {row["name"] for row in diff["timing"]}
            assert "crawl_wall_seconds" in timing
            text = RunWarehouse.render_diff(diff)
            assert "clean: all deterministic series match" in text

    def test_behavioral_divergence_is_flagged(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            _ingest(warehouse, tmp_path, "a", records=100)
            _ingest(warehouse, tmp_path, "b", records=150)
            diff = warehouse.diff("-2", "-1")
            assert not diff["clean"]
            assert any(
                row["name"] == "crawl_records_total"
                for row in diff["mismatches"]
            )
            assert "DIVERGED" in RunWarehouse.render_diff(diff)

    def test_render_is_deterministic(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            _ingest(warehouse, tmp_path, "a", wall=1.5)
            _ingest(warehouse, tmp_path, "b", wall=1.8)
            first = RunWarehouse.render_diff(warehouse.diff("-2", "-1"))
            second = RunWarehouse.render_diff(warehouse.diff("-2", "-1"))
            assert first == second


class TestRobustScore:
    def test_scores_against_history(self):
        history = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert robust_score(1.0, history) == pytest.approx(0.0)
        assert robust_score(3.0, history) > 3
        assert robust_score(1.0, []) is None

    def test_flat_history_falls_back_to_relative_unit(self):
        assert robust_score(1.2, [1.0, 1.0, 1.0]) == pytest.approx(2.0)


RULES_TOML = """
[[rule]]
name = "p99-latency"
kind = "quantile_max"
metric = "http_request_wall_seconds"
quantile = 0.99
max = 0.5

[[rule]]
name = "dead-letter-rate"
kind = "ratio_max"
numerator = "crawl_dead_letters_total"
denominator = "crawl_requests_total"
max = 0.05

[[rule]]
name = "min-records"
kind = "counter_min"
metric = "crawl_records_total"
min = 50

[[rule]]
name = "monitor-overhead"
kind = "bench_max"
bench = "obs"
section = "monitor_overhead"
field = "ratio"
max = 1.03

[[rule]]
name = "wall-regression"
kind = "regression_max"
metric = "crawl_wall_seconds"
max_ratio = 1.5
min_history = 3
"""


def _rules(tmp_path, text=RULES_TOML):
    path = tmp_path / "slo.toml"
    path.write_text(text)
    return load_rules(path)


class TestSloRules:
    def test_load_validates(self, tmp_path):
        rules = _rules(tmp_path)
        assert [r.name for r in rules] == [
            "p99-latency", "dead-letter-rate", "min-records",
            "monitor-overhead", "wall-regression",
        ]

    def test_load_rejects_bad_files(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("not toml [[[")
        with pytest.raises(SloError):
            load_rules(path)
        path.write_text("x = 1")
        with pytest.raises(SloError):
            load_rules(path)
        path.write_text('[[rule]]\nname = "a"\nkind = "nope"\n')
        with pytest.raises(SloError):
            load_rules(path)
        path.write_text('[[rule]]\nname = "a"\nkind = "counter_max"\n')
        with pytest.raises(SloError):
            load_rules(path)  # missing metric/max
        path.write_text(
            '[[rule]]\nname = "a"\nkind = "counter_max"\n'
            'metric = "m"\nmax = 1\n'
            '[[rule]]\nname = "a"\nkind = "counter_max"\n'
            'metric = "m"\nmax = 1\n'
        )
        with pytest.raises(SloError):
            load_rules(path)  # duplicate name

    def test_healthy_run_passes(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            _ingest(warehouse, tmp_path, "a")
            results, manifest = check_run(warehouse, _rules(tmp_path))
            by_name = {r.rule.name: r for r in results}
            assert by_name["p99-latency"].status == PASS
            assert by_name["dead-letter-rate"].status == PASS
            assert by_name["min-records"].status == PASS
            # No bench artifact ingested, not enough history: SKIP.
            assert by_name["monitor-overhead"].status == SKIP
            assert by_name["wall-regression"].status == SKIP
            assert check_passed(results)

    def test_breach_fails_with_named_rule(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            # 20/200 dead letters: 10% > the 5% bound.
            _ingest(warehouse, tmp_path, "a", dead_letters=20)
            results, manifest = check_run(warehouse, _rules(tmp_path))
            by_name = {r.rule.name: r for r in results}
            assert by_name["dead-letter-rate"].status == FAIL
            assert not check_passed(results)
            report = render_check_report(results, manifest)
            assert "BREACH: dead-letter-rate" in report

    def test_bench_floor_breach(self, tmp_path):
        artifact = BenchResults(
            "obs", path=tmp_path / "BENCH_obs.json"
        ).record("monitor_overhead", ratio=1.20)
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            _ingest(warehouse, tmp_path, "a", bench=[artifact])
            results, _ = check_run(warehouse, _rules(tmp_path))
            by_name = {r.rule.name: r for r in results}
            assert by_name["monitor-overhead"].status == FAIL
            assert by_name["monitor-overhead"].value == pytest.approx(1.20)

    def test_regression_engages_with_history(self, tmp_path):
        with RunWarehouse(tmp_path / "wh.sqlite") as warehouse:
            for tag, wall in (("a", 1.0), ("b", 1.1), ("c", 0.9)):
                _ingest(warehouse, tmp_path, tag, wall=wall)
            # A 3x slowdown against a ~1.0s median baseline.
            _ingest(warehouse, tmp_path, "slow", wall=3.0)
            results, _ = check_run(warehouse, _rules(tmp_path))
            by_name = {r.rule.name: r for r in results}
            assert by_name["wall-regression"].status == FAIL
            assert by_name["wall-regression"].value == pytest.approx(3.0)

    def test_report_is_byte_identical(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        with RunWarehouse(db) as warehouse:
            _ingest(warehouse, tmp_path, "a", dead_letters=20)
            rules = _rules(tmp_path)
            results, manifest = check_run(warehouse, rules)
            first = render_check_report(results, manifest)
        # A fresh warehouse handle over the same bytes: same report.
        with RunWarehouse(db) as warehouse:
            results, manifest = check_run(warehouse, load_rules(tmp_path / "slo.toml"))
            second = render_check_report(results, manifest)
        assert first == second

    def test_repo_slo_file_is_valid(self):
        from pathlib import Path

        rules = load_rules(Path(__file__).parent.parent / "slo.toml")
        assert any(r.kind == "quantile_max" for r in rules)
        assert any(r.name == "monitor-overhead" for r in rules)
