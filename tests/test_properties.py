"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clones import block_overlap, feature_distance
from repro.analysis.downloads import bin_index
from repro.markets.profiles import DOWNLOAD_BIN_EDGES
from repro.util.rng import RngFactory, stable_hash64
from repro.util.stats import BoxStats, normalize, top_share

_feature_maps = st.dictionaries(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=40),
    max_size=30,
)


class TestDistanceProperties:
    @settings(max_examples=100, deadline=None)
    @given(_feature_maps, _feature_maps)
    def test_range(self, a, b):
        d = feature_distance(a, b)
        assert 0.0 <= d <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(_feature_maps)
    def test_identity(self, a):
        assert feature_distance(a, a) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(_feature_maps, _feature_maps)
    def test_symmetry(self, a, b):
        assert feature_distance(a, b) == feature_distance(b, a)

    @settings(max_examples=60, deadline=None)
    @given(_feature_maps, _feature_maps)
    def test_disjoint_supports_max_distance(self, a, b):
        shifted = {fid + 1000: count for fid, count in b.items()}
        if a and shifted:
            assert feature_distance(a, shifted) == 1.0


class TestBlockOverlapProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(), max_size=40),
           st.lists(st.integers(), max_size=40))
    def test_range(self, a, b):
        assert 0.0 <= block_overlap(a, b) <= 1.0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=40))
    def test_self_overlap(self, a):
        assert block_overlap(a, a) == 1.0


class TestStatsProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200),
           st.floats(min_value=0.001, max_value=1.0))
    def test_top_share_range(self, values, fraction):
        assert 0.0 <= top_share(values, fraction) <= 1.0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=100))
    def test_top_share_monotone_in_fraction(self, values):
        small = top_share(values, 0.1)
        large = top_share(values, 0.9)
        assert large >= small - 1e-12

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_normalize_sums_to_one_or_zero(self, counts):
        total = normalize(counts).sum()
        assert abs(total - 1.0) < 1e-9 or total == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_box_stats_ordering(self, values):
        box = BoxStats(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum


class TestBinProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10**10))
    def test_bin_contains_value(self, downloads):
        idx = bin_index(downloads)
        lo = DOWNLOAD_BIN_EDGES[idx]
        hi = (
            DOWNLOAD_BIN_EDGES[idx + 1]
            if idx + 1 < len(DOWNLOAD_BIN_EDGES)
            else float("inf")
        )
        assert lo <= downloads < hi

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    def test_bin_monotone(self, a, b):
        if a <= b:
            assert bin_index(a) <= bin_index(b)


class TestRngProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=20), st.text(max_size=20))
    def test_stable_hash_injective_on_parts(self, a, b):
        if a != b:
            assert stable_hash64(a) != stable_hash64(b) or True  # collisions allowed
        assert stable_hash64(a, b) == stable_hash64(a, b)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=10))
    def test_streams_reproducible(self, seed, name):
        rngs = RngFactory(seed)
        a = rngs.stream(name).random(4)
        b = rngs.stream(name).random(4)
        assert np.allclose(a, b)
