"""Load generator: traffic mix, quantiles, and an end-to-end run."""

import pytest

from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.obs.metrics import MetricsRegistry
from repro.serving import DEFAULT_TRAFFIC_MIX, LoadGenerator, ServingTier, TrafficMix
from repro.serving.loadgen import LOADGEN_HIST_METRIC, _quantile
from repro.util.simtime import SimClock


class TestTrafficMix:
    def test_parse_round_trips_describe(self):
        mix = TrafficMix.parse("search=5,detail=3,download=2")
        assert mix == DEFAULT_TRAFFIC_MIX
        assert TrafficMix.parse(mix.describe()) == mix

    def test_parse_omitted_kind_weighs_zero(self):
        mix = TrafficMix.parse("search=1")
        assert mix.detail == 0.0 and mix.download == 0.0
        assert mix.pick(0.0) == "search"
        assert mix.pick(0.999) == "search"

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            TrafficMix.parse("search=lots")
        with pytest.raises(ValueError):
            TrafficMix.parse("uploads=3")
        with pytest.raises(ValueError):
            TrafficMix.parse("search=0,detail=0,download=0")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TrafficMix(search=-1)

    def test_pick_follows_cumulative_weights(self):
        mix = TrafficMix(5, 3, 2)
        assert mix.pick(0.0) == "search"
        assert mix.pick(0.49) == "search"
        assert mix.pick(0.5) == "detail"
        assert mix.pick(0.79) == "detail"
        assert mix.pick(0.8) == "download"


class TestQuantile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert _quantile(values, 0.50) == 50.0
        assert _quantile(values, 0.99) == 99.0
        assert _quantile(values, 1.0) == 100.0

    def test_empty_sample(self):
        assert _quantile([], 0.99) == 0.0


class TestLoadRun:
    @pytest.fixture(scope="class")
    def servers(self):
        from repro.ecosystem.generator import EcosystemGenerator

        world = EcosystemGenerator(seed=17, scale=0.0002).generate()
        clock = SimClock()
        return {m: MarketServer(s, clock) for m, s in build_stores(world).items()}

    def test_run_reports_and_records_histograms(self, servers):
        registry = MetricsRegistry()
        with ServingTier(servers) as tier:
            report = LoadGenerator(
                tier, servers, users=4, requests_per_user=6,
                seed=3, registry=registry,
            ).run()
        assert report.requests == 24
        assert report.ok + report.shed + report.errors == 24
        assert report.errors == 0
        assert report.p99_ms >= report.p50_ms > 0
        assert sum(report.by_kind.values()) == 24
        hists = [d for d in registry.to_dicts()
                 if d["name"] == LOADGEN_HIST_METRIC]
        assert hists  # the SLO gate's metric exists
        assert sum(d["count"] for d in hists) == 24

    def test_request_streams_are_deterministic(self, servers):
        with ServingTier(servers) as tier:
            a = LoadGenerator(tier, servers, users=3, requests_per_user=8,
                              seed=9).run()
            b = LoadGenerator(tier, servers, users=3, requests_per_user=8,
                              seed=9).run()
        assert a.by_kind == b.by_kind  # same rolls, same plan
        assert a.by_status == b.by_status

    def test_rejects_empty_fleet_and_bad_counts(self, servers):
        with ServingTier(servers) as tier:
            with pytest.raises(ValueError):
                LoadGenerator(tier, servers, users=0)
            with pytest.raises(ValueError):
                LoadGenerator(tier, servers, requests_per_user=0)
            with pytest.raises(ValueError):
                LoadGenerator(tier, {}, users=2)
