"""The asyncio serving tier: lifecycle, framing, and counters."""

import asyncio
import socket
import threading

import pytest

from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.http import Request, Response
from repro.serving import ServingTier
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def world():
    from repro.ecosystem.generator import EcosystemGenerator

    return EcosystemGenerator(seed=11, scale=0.0002).generate()


@pytest.fixture()
def servers(world):
    clock = SimClock()
    return {m: MarketServer(s, clock) for m, s in build_stores(world).items()}


class TestLifecycle:
    def test_start_stop_idempotent(self, servers):
        tier = ServingTier(servers)
        assert not tier.running
        tier.start()
        tier.start()  # second start is a no-op
        assert tier.running
        ports = {m: tier.address(m)[1] for m in servers}
        assert len(set(ports.values())) == len(servers)  # one listener each
        tier.stop()
        tier.stop()
        assert not tier.running
        with pytest.raises(RuntimeError):
            tier.address("google_play")

    def test_context_manager(self, servers):
        with ServingTier(servers) as tier:
            assert tier.running
        assert not tier.running

    def test_rejects_blocking_server_latency(self, servers):
        # A server that time.sleep()s inside handle would stall the
        # whole loop; the tier owns latency injection instead.
        market_id = next(iter(servers))
        servers[market_id]._latency_s = 0.01
        with pytest.raises(ValueError, match="latency"):
            ServingTier(servers)

    def test_rejects_negative_latency(self, servers):
        with pytest.raises(ValueError):
            ServingTier(servers, latency_s=-1.0)


class TestExchanges:
    def test_sequential_exchanges_on_one_connection(self, servers):
        with ServingTier(servers) as tier:
            transport = tier.transport("google_play")
            try:
                listing = next(iter(
                    servers["google_play"].store.iter_live(0.0)
                ))
                headers = {"x-sim-time": "0.0"}
                for _ in range(3):
                    resp = transport(Request(
                        "/app", {"package": listing.package}, headers
                    ))
                    assert resp.ok
                assert tier.frames_served["google_play"] == 3
                assert tier.connections_accepted["google_play"] == 1
            finally:
                transport.close()

    def test_concurrent_connections(self, servers):
        market_id = "google_play"
        listing = next(iter(servers[market_id].store.iter_live(0.0)))
        with ServingTier(servers, latency_s=0.005) as tier:
            results = []
            def worker():
                transport = tier.transport(market_id)
                try:
                    results.append(transport(Request(
                        "/app", {"package": listing.package},
                        {"x-sim-time": "0.0"},
                    )))
                finally:
                    transport.close()
            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 8
            assert all(r.ok for r in results)
            assert tier.connections_accepted[market_id] == 8
            assert tier.total_frames_served == 8

    def test_garbled_frame_gets_500_and_drop(self, servers):
        with ServingTier(servers) as tier:
            host, port = tier.address("google_play")
            with socket.create_connection((host, port)) as sock:
                sock.sendall((4).to_bytes(4, "big") + b"junk")
                from repro.net.transport import _recv_exactly, frame_length
                from repro.net.transport import decode_response

                header = _recv_exactly(sock, 4)
                resp = decode_response(_recv_exactly(sock, frame_length(header)))
                assert resp.status == 500
                # The connection is dropped after the answer.
                assert sock.recv(1) == b""

    def test_async_transport_pool(self, servers):
        market_id = "google_play"
        listing = next(iter(servers[market_id].store.iter_live(0.0)))
        with ServingTier(servers) as tier:
            transport = tier.async_transport(market_id)
            request = Request(
                "/app", {"package": listing.package}, {"x-sim-time": "0.0"}
            )

            async def go():
                results = await asyncio.gather(
                    *(transport.send(request) for _ in range(6))
                )
                sequential = [await transport.send(request) for _ in range(4)]
                await transport.aclose()
                return results, sequential

            burst, sequential = asyncio.run(go())
            assert all(r.ok for r in burst + sequential)
            # The burst opened up to 6 sockets; the sequential tail
            # reused the pool instead of opening more.
            assert transport.connections_opened <= 6

    def test_hostile_market_over_socket(self, world):
        from repro.markets.hostility import HostilityPolicy

        clock = SimClock()
        stores = build_stores(world)
        servers = {
            "tencent": MarketServer(
                stores["tencent"], clock,
                hostility=HostilityPolicy.from_spec("auth"),
            )
        }
        with ServingTier(servers) as tier:
            transport = tier.transport("tencent")
            try:
                listing = next(iter(stores["tencent"].iter_live(0.0)))
                bare = transport(Request(
                    "/app", {"package": listing.package}, {"x-sim-time": "0.0"}
                ))
                assert bare.status == 401  # auth wall crosses the wire
                login = transport(Request("/login", {}, {"x-sim-time": "0.0"}))
                assert login.ok
            finally:
                transport.close()
