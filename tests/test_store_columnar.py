"""Tests for the columnar segment store and the APK blob vault."""

import pytest

from repro.store.blobs import BlobVault, LazyApk
from repro.store.columnar import ColumnStore, StoreError

from conftest import make_parsed


@pytest.fixture()
def store(tmp_path):
    with ColumnStore(tmp_path / "corpus.db", batch_size=4) as cs:
        yield cs


def _records_family(store):
    return store.family(
        "records",
        [("market", "TEXT"), ("package", "TEXT")],
        unique=["market", "package"],
        indexes=[["package"]],
    )


class TestFamily:
    def test_append_scan_roundtrip(self, store):
        fam = _records_family(store)
        rows = [("m1", f"pkg.{i:03d}", f"payload-{i}".encode()) for i in range(10)]
        for row in rows:
            fam.append(*row)
        got = list(fam.scan(batch_size=3))
        assert got == rows

    def test_scan_honors_where(self, store):
        fam = _records_family(store)
        fam.append("m1", "a", b"1")
        fam.append("m2", "a", b"2")
        fam.append("m1", "b", b"3")
        assert list(fam.scan(market="m1")) == [("m1", "a", b"1"), ("m1", "b", b"3")]

    def test_ordered_scan_sorts_by_columns(self, store):
        fam = _records_family(store)
        fam.append("m2", "b", b"1")
        fam.append("m1", "c", b"2")
        fam.append("m1", "a", b"3")
        ordered = [r[:2] for r in fam.scan(order_by=["market", "package"])]
        assert ordered == [("m1", "a"), ("m1", "c"), ("m2", "b")]

    def test_keyset_pagination_survives_interleaved_writes(self, store):
        fam = _records_family(store)
        for i in range(6):
            fam.append("m1", f"p{i}", b"x")
        fam.flush()
        seen = []
        cursor = fam.scan(batch_size=2, order_by=["package"])
        seen.append(next(cursor))
        # A write landing mid-scan must not disturb the cursor's window;
        # sorting after the scan position, it shows up at the tail.
        fam.append("m1", "p9", b"y")
        fam.flush()
        seen.extend(cursor)
        assert [r[1] for r in seen] == ["p0", "p1", "p2", "p3", "p4", "p5", "p9"]

    def test_get_and_count(self, store):
        fam = _records_family(store)
        fam.append("m1", "a", b"1")
        fam.append("m2", "a", b"2")
        assert fam.get(market="m2", package="a") == ("m2", "a", b"2")
        assert fam.get(market="m3", package="a") is None
        assert fam.count() == 2
        assert fam.count(package="a") == 2
        assert fam.count(market="m1") == 1

    def test_update_rewrites_columns(self, store):
        fam = _records_family(store)
        fam.append("m1", "a", b"old")
        changed = fam.update({"payload": b"new"}, {"market": "m1", "package": "a"})
        assert changed == 1
        assert fam.get(market="m1", package="a") == ("m1", "a", b"new")

    def test_unique_constraint_enforced(self, tmp_path):
        cs = ColumnStore(tmp_path / "dup.db", batch_size=4)
        fam = _records_family(cs)
        fam.append("m1", "a", b"1")
        fam.append("m1", "a", b"2")
        with pytest.raises(Exception):
            fam.flush()
        # The failed batch stays pending (fail-loudly, even at close);
        # drop it so the store can shut down cleanly.
        fam._pending.clear()
        cs.close()

    def test_bad_identifier_rejected(self, store):
        with pytest.raises(StoreError):
            store.family("bad-name", [("x", "TEXT")])


class TestReopen:
    def test_rows_survive_close_and_reopen(self, tmp_path):
        path = tmp_path / "corpus.db"
        with ColumnStore(path, batch_size=4) as cs:
            fam = _records_family(cs)
            fam.append("m1", "a", b"persisted")
        with ColumnStore(path, batch_size=4) as cs:
            fam = _records_family(cs)
            assert fam.count() == 1
            assert fam.get(market="m1", package="a") == ("m1", "a", b"persisted")
            assert "records" in cs.family_names()


class TestBlobVault:
    def test_put_load_roundtrip(self, tmp_path):
        vault = BlobVault(tmp_path)
        apk = make_parsed(package="com.vault.app")
        vault.put(apk)
        assert apk.md5 in vault
        loaded = vault.load(apk.md5)
        assert loaded.md5 == apk.md5
        assert loaded.manifest.package == "com.vault.app"

    def test_put_is_idempotent(self, tmp_path):
        vault = BlobVault(tmp_path)
        apk = make_parsed()
        assert vault.put(apk) == vault.put(apk) == apk.md5

    def test_lazy_proxy_defers_and_delegates(self, tmp_path):
        vault = BlobVault(tmp_path)
        apk = make_parsed(package="com.lazy.app", version_code=9)
        lazy = vault.lazy(apk)
        assert isinstance(lazy, LazyApk)
        # Identity columns are resident; content loads on demand.
        assert lazy.md5 == apk.md5
        assert lazy.signer_fingerprint == apk.signer_fingerprint
        assert lazy.version_code_hint == 9
        assert lazy.manifest.package == "com.lazy.app"

    def test_cache_is_bounded(self, tmp_path):
        vault = BlobVault(tmp_path, cache_size=2)
        md5s = []
        for i in range(4):
            apk = make_parsed(package=f"com.bound.app{i}", version_code=i + 1)
            vault.put(apk)
            md5s.append(apk.md5)
        for md5 in md5s:
            assert vault.load(md5).md5 == md5
        assert len(vault._cache) <= 2
