"""The out-of-core contract: sqlite and memory backends are bit-identical.

Every ``content_digest()`` — world, snapshot, experiment reports — must
not depend on where the records live.  These tests pin that contract at
the unit level (spill boundary, cursor order, reopen) and end-to-end
(full study, memory vs sqlite, serial vs parallel analysis).
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.crawler.snapshot import (
    Snapshot,
    _digest_row,
    streaming_snapshot_digest,
)
from repro.ecosystem.generator import EcosystemGenerator
from repro.experiments.runner import digest_reports, run_all
from repro.store import CorpusStore, SpilledAppList
from repro.util.rng import stable_hash64

from conftest import make_parsed, make_record


def _make_world(seed=11, scale=0.0005):
    return EcosystemGenerator(seed=seed, scale=scale).generate()


def _records(n, market="tencent"):
    return [
        make_record(market_id=market, package=f"com.app.{i:04d}", downloads=100 + i)
        for i in range(n)
    ]


class TestWorldSpill:
    @pytest.mark.parametrize("seed,scale", [(11, 0.0005), (42, 0.001)])
    def test_digest_invariant_across_backends(self, tmp_path, seed, scale):
        world = _make_world(seed, scale)
        before = world.content_digest()
        world.spill(CorpusStore(tmp_path, spill_threshold=0))
        assert world.spilled
        assert world.content_digest() == before

    def test_cursor_order_matches_materialized(self, tmp_path):
        world = _make_world()
        packages = [app.package for app in world.apps]
        world.spill(CorpusStore(tmp_path, spill_threshold=0))
        assert [a.package for a in world.apps.iter(batch_size=7)] == packages
        assert [a.app_id for a in world.apps] == list(range(len(packages)))

    def test_developer_identity_survives(self, tmp_path):
        world = _make_world()
        world.spill(CorpusStore(tmp_path, spill_threshold=0))
        for app in world.apps.iter(batch_size=64):
            if app.developer is not None:
                assert app.developer is world.developers[app.developer.dev_id]
                break
        else:
            pytest.fail("no app with a developer")

    def test_find_by_package_uses_index(self, tmp_path):
        world = _make_world()
        target = world.apps[0].package
        expected = [a.app_id for a in world.apps if a.package == target]
        world.spill(CorpusStore(tmp_path, spill_threshold=0))
        assert [a.app_id for a in world.find_by_package(target)] == expected

    def test_write_back_survives_reopen(self, tmp_path):
        world = _make_world()
        store = CorpusStore(tmp_path / "corpus", spill_threshold=0)
        world.spill(store)
        app = world.apps[0]
        market_id = next(iter(app.placements))
        app.placements[market_id].version_index = 999
        world.write_back(app)
        store.close()

        reopened = CorpusStore(tmp_path / "corpus", spill_threshold=0)
        apps = SpilledAppList(reopened.apps_family(), world.developers)
        assert len(apps) == len(world.apps)
        assert apps[0].placements[market_id].version_index == 999
        reopened.close()


class TestSnapshotSpill:
    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_streaming_digest_matches_stable_hash(self, n):
        # The incremental fold must equal the one-shot tuple hash for
        # every tuple-repr shape (empty, single-element ",)" case, many).
        rows = [_digest_row(r) for r in _records(n)]
        assert streaming_snapshot_digest("t", iter(rows)) == stable_hash64(
            "snapshot-content", "t", tuple(rows)
        )

    def test_digest_invariant_with_attach_before_and_after_spill(self, tmp_path):
        def build(store):
            snap = Snapshot("t", store=store)
            records = _records(9)
            for record in records[:5]:
                snap.add(record)
            snap.attach_apk(
                records[0], make_parsed(package=records[0].package), "market"
            )
            for record in records[5:]:
                snap.add(record)
            snap.attach_apk(
                records[7], make_parsed(package=records[7].package), "archive"
            )
            return snap

        memory = build(None)
        spilled = build(CorpusStore(tmp_path, spill_threshold=4, batch_size=3))
        assert spilled.spilled and not memory.spilled
        assert spilled.content_digest() == memory.content_digest()
        assert spilled.apk_coverage("tencent") == memory.apk_coverage("tencent")
        assert spilled.packages() == memory.packages()
        assert [r.package for r in spilled.iter_sorted(batch_size=2)] == [
            r.package for r in memory.sorted_records()
        ]

    def test_spill_threshold_boundary(self, tmp_path):
        store = CorpusStore(tmp_path, spill_threshold=3)
        snap = Snapshot("t", store=store)
        records = _records(4)
        for record in records[:3]:
            snap.add(record)
        assert not snap.spilled  # at the threshold: still in memory
        snap.add(records[3])
        assert snap.spilled  # one past: spilled
        plain = Snapshot("t")
        for record in _records(4):
            plain.add(record)
        assert snap.content_digest() == plain.content_digest()

    def test_duplicate_add_rejected_on_both_backends(self, tmp_path):
        for store in (None, CorpusStore(tmp_path, spill_threshold=0)):
            snap = Snapshot("t", store=store)
            assert snap.add(make_record())
            assert not snap.add(make_record())
            assert len(snap) == 1


class TestStudyContract:
    """End-to-end: memory(w=1) vs sqlite(w=2) — everything digests equal."""

    CFG = dict(seed=42, scale=0.0005, download_apks=True)

    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        memory = Study(StudyConfig(**self.CFG)).run()
        sqlite = Study(
            StudyConfig(
                **self.CFG,
                store_backend="sqlite",
                store_spill_threshold=0,
                store_batch_size=32,
                store_dir=str(tmp_path_factory.mktemp("corpus")),
                analysis_workers=2,
            )
        ).run()
        return memory, sqlite

    def test_world_digests_equal(self, pair):
        memory, sqlite = pair
        assert sqlite.world.spilled
        assert memory.world.content_digest() == sqlite.world.content_digest()

    def test_snapshot_digests_equal(self, pair):
        memory, sqlite = pair
        assert sqlite.snapshot.spilled
        assert memory.snapshot.content_digest() == sqlite.snapshot.content_digest()

    def test_units_equal(self, pair):
        memory, sqlite = pair
        key = lambda u: (u.package, u.signer, u.apk_md5, u.markets)
        assert [key(u) for u in memory.units] == [key(u) for u in sqlite.units]

    def test_report_digests_equal(self, pair):
        memory, sqlite = pair
        assert digest_reports(run_all(memory)) == digest_reports(run_all(sqlite))
