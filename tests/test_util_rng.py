"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, stable_hash32, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1) == stable_hash64("a", 1)

    def test_distinct_inputs_differ(self):
        assert stable_hash64("a") != stable_hash64("b")

    def test_part_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash64("ab", "c") != stable_hash64("a", "bc")

    def test_32_bit_range(self):
        for i in range(50):
            assert 0 <= stable_hash32("x", i) < 2**32

    def test_64_bit_range(self):
        for i in range(50):
            assert 0 <= stable_hash64("x", i) < 2**64

    def test_spread(self):
        values = {stable_hash32("spread", i) % 100 for i in range(500)}
        assert len(values) > 90  # roughly uniform over buckets


class TestRngFactory:
    def test_same_name_same_stream(self):
        rngs = RngFactory(7)
        a = rngs.stream("apps").random(5)
        b = rngs.stream("apps").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        rngs = RngFactory(7)
        a = rngs.stream("apps").random(5)
        b = rngs.stream("markets").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random(5)
        b = RngFactory(2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_child_namespacing(self):
        rngs = RngFactory(7)
        child = rngs.child("ecosystem")
        assert child.seed != rngs.seed
        a = child.stream("apps").random(3)
        b = rngs.child("ecosystem").stream("apps").random(3)
        assert np.allclose(a, b)

    def test_multi_part_names(self):
        rngs = RngFactory(7)
        a = rngs.stream("vetting", "tencent").random(3)
        b = rngs.stream("vetting", "baidu").random(3)
        assert not np.allclose(a, b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]
