"""Tests for simulated time."""

import datetime

import pytest

from repro.util.simtime import (
    EPOCH,
    FIRST_CRAWL_DAY,
    SECOND_CRAWL_DAY,
    SimClock,
    date_to_day,
    day_to_date,
    days,
    months,
)


class TestConversions:
    def test_epoch_is_day_zero(self):
        assert date_to_day(EPOCH) == 0

    def test_roundtrip(self):
        date = datetime.date(2017, 8, 15)
        assert day_to_date(date_to_day(date)) == date

    def test_first_crawl_date(self):
        assert day_to_date(FIRST_CRAWL_DAY) == datetime.date(2017, 8, 15)

    def test_second_crawl_date(self):
        assert day_to_date(SECOND_CRAWL_DAY) == datetime.date(2018, 4, 30)

    def test_crawls_roughly_8_months_apart(self):
        assert 7.5 * 30 < SECOND_CRAWL_DAY - FIRST_CRAWL_DAY < 9 * 30

    def test_durations(self):
        assert days(3) == 3.0
        assert months(1) == pytest.approx(30.44)


class TestSimClock:
    def test_starts_at_first_crawl(self):
        assert SimClock().now == FIRST_CRAWL_DAY

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == FIRST_CRAWL_DAY + 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(SECOND_CRAWL_DAY)
        assert clock.now == SECOND_CRAWL_DAY

    def test_advance_to_past_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_to(clock.now - 1)

    def test_today(self):
        assert SimClock().today == datetime.date(2017, 8, 15)
