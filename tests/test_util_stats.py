"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    BoxStats,
    cdf_points,
    histogram_shares,
    normalize,
    percentile_shares,
    top_share,
)


class TestCdfPoints:
    def test_simple(self):
        xs, cdf = cdf_points([1, 2, 3, 4])
        assert list(xs) == [1, 2, 3, 4]
        assert np.allclose(cdf, [0.25, 0.5, 0.75, 1.0])

    def test_grid(self):
        xs, cdf = cdf_points([1, 2, 3, 4], grid=[0, 2.5, 10])
        assert np.allclose(cdf, [0.0, 0.5, 1.0])

    def test_duplicates(self):
        xs, cdf = cdf_points([2, 2, 2])
        assert list(xs) == [2]
        assert cdf[-1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestTopShare:
    def test_uniform(self):
        # Top 10% of equal values holds ~10% of the mass.
        assert abs(top_share([1.0] * 100, 0.1) - 0.1) < 1e-9

    def test_concentrated(self):
        values = [1000] + [1] * 99
        assert top_share(values, 0.01) == pytest.approx(1000 / 1099)

    def test_always_counts_one(self):
        assert top_share([5, 1], 0.001) == pytest.approx(5 / 6)

    def test_zero_total(self):
        assert top_share([0, 0], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_share([1], 0.0)

    def test_percentile_shares(self):
        shares = percentile_shares([10, 1, 1], [0.5, 1.0])
        assert shares[1.0] == pytest.approx(1.0)
        assert shares[0.5] > 0.5


class TestNormalize:
    def test_sums_to_one(self):
        assert np.isclose(normalize([1, 1, 2]).sum(), 1.0)

    def test_all_zero(self):
        assert normalize([0, 0]).sum() == 0.0

    def test_histogram_shares(self):
        shares = histogram_shares([1, 2, 3, 11], [0, 10, 20])
        assert np.allclose(shares, [0.75, 0.25])


class TestComparisonMetrics:
    def test_spearman_perfect(self):
        from repro.util.stats import spearman_rank_correlation

        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_spearman_inverted(self):
        from repro.util.stats import spearman_rank_correlation

        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_spearman_ignores_scale(self):
        from repro.util.stats import spearman_rank_correlation

        a = [1, 5, 2, 9]
        assert spearman_rank_correlation(a, [x * 100 for x in a]) == pytest.approx(1.0)

    def test_spearman_ties(self):
        from repro.util.stats import spearman_rank_correlation

        rho = spearman_rank_correlation([1, 1, 2], [1, 2, 3])
        assert -1.0 <= rho <= 1.0

    def test_spearman_constant_input(self):
        from repro.util.stats import spearman_rank_correlation

        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_validation(self):
        from repro.util.stats import spearman_rank_correlation

        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1])

    def test_mae(self):
        from repro.util.stats import mean_absolute_error

        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_l1(self):
        from repro.util.stats import l1_distance

        assert l1_distance([0.5, 0.5], [0.25, 0.75]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            l1_distance([1], [1, 2])


class TestBoxStats:
    def test_five_numbers(self):
        box = BoxStats(range(1, 101))
        assert box.minimum == 1
        assert box.maximum == 100
        assert abs(box.median - 50.5) < 1
        assert box.q1 < box.median < box.q3

    def test_single_value(self):
        box = BoxStats([3.0])
        assert box.minimum == box.maximum == box.median == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoxStats([])

    def test_as_dict(self):
        keys = set(BoxStats([1, 2, 3]).as_dict())
        assert keys == {"min", "q1", "median", "q3", "max"}
