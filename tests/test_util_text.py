"""Tests for name generation."""

import re

import numpy as np

from repro.util.text import (
    COMMON_APP_NAMES,
    app_display_name,
    developer_name,
    package_name,
)

_PACKAGE_RE = re.compile(r"^[a-z]+(\.[a-z0-9]+)+$")


class TestPackageName:
    def test_valid_java_package(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert _PACKAGE_RE.match(package_name(rng))

    def test_mostly_unique(self):
        rng = np.random.default_rng(2)
        names = {package_name(rng) for _ in range(2000)}
        assert len(names) > 1990

    def test_deterministic_given_rng(self):
        a = package_name(np.random.default_rng(7))
        b = package_name(np.random.default_rng(7))
        assert a == b


class TestDisplayName:
    def test_nonempty(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            assert app_display_name(rng).strip()

    def test_common_fraction(self):
        rng = np.random.default_rng(4)
        names = [app_display_name(rng, common_fraction=1.0) for _ in range(50)]
        assert all(n in COMMON_APP_NAMES for n in names)

    def test_zero_common_fraction(self):
        rng = np.random.default_rng(5)
        names = [app_display_name(rng, common_fraction=0.0) for _ in range(200)]
        assert not any(n in COMMON_APP_NAMES for n in names)


class TestDeveloperName:
    def test_china_style(self):
        rng = np.random.default_rng(6)
        names = [developer_name(rng, "china") for _ in range(20)]
        assert any("Co., Ltd." in n or "Keji" in n or "Technology" in n
                   or "Mobile" in n or "Software" in n for n in names)

    def test_global_style(self):
        rng = np.random.default_rng(7)
        assert developer_name(rng, "global")
